"""r-way run replication: write fan-out, promotion, and anti-entropy repair.

The fault-tolerant DSM-Sort pass recovers a dead ASU's runs by *re-emitting*
them from the host-side lineage — correct, but the recovery traffic re-ships
every lost byte through a host NIC.  With ``replication=`` configured, each
emitted run is written through the emulated disks to ``r`` replica ASUs
chosen by the deterministic :class:`~repro.replica.placement.ReplicaPlacement`
function, and an ASU crash becomes *promotion*: the surviving copies are
already durable, the durable-record account does not move, and the job
continues with zero run re-emission (PAPERS.md -> the mean-field replication
model: repair bandwidth, not replay bandwidth, is the recovery currency).

The :class:`ReplicationManager` owns the logical view (``ReplicaSet`` per
emitted run) while ``runs_on_asu`` keeps holding the physical copies.  Its
account is invariant-driven: a set is *counted* toward the job's durable
total exactly when its write policy is satisfied by the currently-durable
copies of its currently-planned replicas, so crashes re-derive counting
instead of patching it.

Read steering (the pass-2 plan and repair sources) runs over registry gauge
vectors — the same feedback mechanism the load manager routes functor work
with (:func:`repro.core.routing.pick_least_loaded`).
"""

from __future__ import annotations

from typing import Optional

from ..core.routing import pick_least_loaded
from ..faults.errors import StaleEpochError
from .placement import ReplicaPlacement

__all__ = ["ReplicaSet", "ReplicationConfig", "ReplicationManager"]

#: write policies: ``all`` counts a run durable when every planned replica
#: holds it; ``quorum`` when a majority of the configured ``r`` does.
WRITE_POLICIES = ("all", "quorum")


class ReplicationConfig:
    """How a job replicates its runs.

    ``r`` copies per run, written under ``write_policy``; the anti-entropy
    loop re-replicates under-replicated sets every ``repair_interval``
    virtual seconds, pacing itself to ``repair_bandwidth`` bytes/s (``None``
    derives a default from the platform disk rate) so repair traffic shares
    the fleet instead of stampeding it.  ``placement_seed`` decorrelates the
    replica placement of jobs sharing one fleet.
    """

    def __init__(
        self,
        r: int = 2,
        write_policy: str = "all",
        repair_interval: float = 0.05,
        repair_bandwidth: Optional[float] = None,
        placement_seed: int = 0,
    ):
        if r < 1:
            raise ValueError(f"replication factor must be >= 1, got {r}")
        if write_policy not in WRITE_POLICIES:
            raise ValueError(
                f"write_policy must be one of {WRITE_POLICIES}, got "
                f"{write_policy!r}"
            )
        if repair_interval <= 0:
            raise ValueError("repair_interval must be positive")
        if repair_bandwidth is not None and repair_bandwidth <= 0:
            raise ValueError("repair_bandwidth must be positive")
        self.r = int(r)
        self.write_policy = write_policy
        self.repair_interval = float(repair_interval)
        self.repair_bandwidth = repair_bandwidth
        self.placement_seed = int(placement_seed)

    def __repr__(self) -> str:
        return (
            f"ReplicationConfig(r={self.r}, write_policy={self.write_policy!r})"
        )


class ReplicaSet:
    """Logical state of one replicated run."""

    __slots__ = (
        "key", "src_host", "bucket", "run", "rid", "targets", "copies",
        "counted", "journal_dest", "repair_inflight",
    )

    def __init__(self, key, src_host, bucket, run, rid, targets):
        self.key = key
        self.src_host = src_host
        self.bucket = bucket
        self.run = run
        self.rid = rid
        #: planned-but-not-yet-durable replica holders (in flight)
        self.targets: set[int] = set(targets)
        #: ASUs holding a durable copy
        self.copies: set[int] = set()
        #: whether this set currently contributes to the durable total
        self.counted = False
        #: ASU whose manifest entry records this run (checkpointed runs)
        self.journal_dest: Optional[int] = None
        #: repair destinations in flight (for the repaired-copies counter)
        self.repair_inflight: set[int] = set()


class ReplicationManager:
    """Tracks every :class:`ReplicaSet` of one fault-tolerant pass.

    Mutating entry points run inside the runtime's yield-free regions or
    simulator callbacks, so state transitions are atomic with the network
    posts they describe — a fail-stop can never half-record one.
    """

    def __init__(
        self,
        config: ReplicationConfig,
        n_asus: int,
        *,
        registry=None,
        manifest=None,
        tracer=None,
        job_labels: Optional[dict] = None,
    ):
        if registry is None:
            # Steering needs the gauge arrays even when the job is unmetered.
            from ..metrics.registry import MetricsRegistry

            registry = MetricsRegistry()
        self.config = config
        self.n_asus = int(n_asus)
        self.manifest = manifest
        self.tracer = tracer
        self.placement = ReplicaPlacement(
            n_asus, seed=config.placement_seed
        )
        self.sets: dict[tuple, ReplicaSet] = {}
        self._dead: set[int] = set()
        self._seq = 0
        #: membership view fencing replica writes (None = fail-stop trust)
        self.view = None
        labels = job_labels or {}
        self._gv_copies = registry.gauge_vector(
            "repro_replica_copies", n_asus, index_label="asu", **labels
        )
        self._gv_read = registry.gauge_vector(
            "repro_replica_read_bytes", n_asus, index_label="asu", **labels
        )
        self._g_under = registry.gauge("repro_replica_underreplicated", **labels)
        self._c_promoted = registry.counter(
            "repro_replica_promotions_total", **labels
        )
        self._c_repaired = registry.counter(
            "repro_replica_repairs_total", **labels
        )
        self._c_lost = registry.counter("repro_replica_lost_total", **labels)
        self._c_retargeted = registry.counter(
            "repro_replica_retargeted_total", **labels
        )
        #: per-host queues of sets needing a fresh emit (drained by the
        #: detection sweep into host control messages)
        self.pending_reemits: dict[int, list[tuple]] = {}
        # exposed counters (mirrored into Pass1Result)
        self.n_promoted_runs = 0
        self.n_lost_runs = 0
        self.n_repaired_copies = 0
        self.n_retargeted_copies = 0
        self.n_fenced_writes = 0
        self.n_readopted_copies = 0
        self.n_divergent_copies = 0

    # -- membership fencing ---------------------------------------------------
    def attach_view(self, view) -> None:
        """Fence writes with a membership view (docs/PARTITIONS.md).

        With a view attached, :meth:`copy_durable` validates the destination
        node's epoch before accepting the write, so a copy landing on an
        expelled-but-alive ASU raises
        :class:`~repro.faults.errors.StaleEpochError` instead of silently
        mutating state the survivors no longer expect to change.
        """
        self.view = view

    # -- counting invariant ---------------------------------------------------
    def _needed(self, st: ReplicaSet) -> int:
        plan = len(st.copies | st.targets)
        if self.config.write_policy == "quorum":
            return max(1, min(self.config.r // 2 + 1, plan))
        return max(1, plan)

    def _recount(self, st: ReplicaSet) -> int:
        """Re-derive ``counted``; returns the durable-record delta."""
        now_counted = bool(st.copies) and len(st.copies) >= self._needed(st)
        if now_counted == st.counted:
            return 0
        st.counted = now_counted
        n = int(st.run.shape[0])
        return n if now_counted else -n

    def _under_replicated(self, st: ReplicaSet) -> bool:
        want = min(self.config.r, self.n_asus - len(self._dead))
        return len(st.copies | st.targets) < want

    def _refresh_under_gauge(self) -> None:
        n = sum(1 for st in self.sets.values() if self._under_replicated(st))
        self._g_under.set(float(n))

    # -- write path -----------------------------------------------------------
    def plan_targets(self, shard_key: int) -> list[int]:
        """Ordered alive replica set for a new run (pure placement read)."""
        want = min(self.config.r, self.n_asus - len(self._dead))
        ranked = self.placement.replicas(shard_key, self.n_asus)
        out = [d for d in ranked if d not in self._dead]
        return out[: max(1, want)]

    def register_emit(self, src_host, bucket, run, rid=None, targets=None):
        """Create the set for a freshly emitted run; returns (key, targets).

        Call in the same yield-free region as the posts.  ``targets``
        computed earlier (before a CPU charge) are re-validated against the
        current dead set and re-planned if every one of them died meanwhile.
        """
        key = (0, src_host, self._seq)
        shard_key = (src_host << 24) | self._seq
        self._seq += 1
        if targets is None:
            targets = self.plan_targets(shard_key)
        else:
            targets = [d for d in targets if d not in self._dead]
            if not targets:
                targets = self.plan_targets(shard_key)
        st = ReplicaSet(key, src_host, bucket, run, rid, targets)
        self.sets[key] = st
        self._refresh_under_gauge()
        return key, list(targets)

    def adopt_restored(self, rid, src_host, bucket, run, dest) -> None:
        """Adopt a manifest-restored run as a durable single-copy set.

        Restored runs enter with one durable copy at their journal dest; the
        anti-entropy loop tops them back up to ``r`` in the background.
        """
        key = (1, int(rid), 0)
        st = ReplicaSet(key, src_host, bucket, run, rid, ())
        st.copies.add(dest)
        st.counted = True
        st.journal_dest = dest
        self.sets[key] = st
        self._gv_copies.add(dest, 1.0)
        self._refresh_under_gauge()

    def copy_durable(self, key, dest) -> tuple[int, bool]:
        """A replica write became durable at ``dest``.

        Returns ``(durable_delta, fresh_copy)``: the records to add to the
        job's durable count (non-zero only when the write policy is newly
        satisfied), and whether this copy is new at ``dest`` (the caller
        appends the physical run exactly once per holder).

        With a view attached, the write is fenced: a ``dest`` outside the
        current membership (or holding a stale admission token) raises
        :class:`~repro.faults.errors.StaleEpochError` — the typed rejection
        the partition story depends on, replacing the silent no-op that the
        fail-stop model could afford.
        """
        if self.view is not None:
            try:
                self.view.validate(f"asu{dest}", op="replica write")
            except StaleEpochError:
                self.n_fenced_writes += 1
                raise
        st = self.sets.get(key)
        if st is None or dest in self._dead:
            return 0, False
        if dest in st.copies:
            return 0, False
        st.targets.discard(dest)
        st.copies.add(dest)
        self._gv_copies.add(dest, 1.0)
        if dest in st.repair_inflight:
            st.repair_inflight.discard(dest)
            self.n_repaired_copies += 1
            self._c_repaired.inc()
        delta = self._recount(st)
        if delta > 0 and st.rid is not None and st.journal_dest is None:
            st.journal_dest = dest
            if self.manifest is not None:
                self.manifest.log_run_durable(st.rid, dest, st.run)
        self._refresh_under_gauge()
        return delta, True

    # -- failure paths (simulator callbacks; no yields) -----------------------
    def on_asu_crash(self, d: int, now: float = 0.0) -> int:
        """Remove ASU ``d`` from every set; promotion where survivors exist.

        Returns the durable-record delta (negative when counted sets lost
        their last copy).  Sets stranded with neither copies nor in-flight
        targets are queued per source host in :attr:`pending_reemits` for
        the detection sweep to turn into re-emit control messages.
        """
        if d in self._dead:
            return 0
        self._dead.add(d)
        delta = 0
        promoted = 0
        journal_touched = False
        relog: list[ReplicaSet] = []
        for key in sorted(self.sets):
            st = self.sets[key]
            touched = d in st.copies or d in st.targets
            if not touched:
                continue
            was_counted = st.counted
            if d in st.copies:
                st.copies.discard(d)
                self._gv_copies.add(d, -1.0)
            st.targets.discard(d)
            st.repair_inflight.discard(d)
            delta += self._recount(st)
            if st.rid is not None and st.journal_dest == d:
                journal_touched = True
                if st.copies:
                    relog.append(st)
                else:
                    st.journal_dest = None
            if was_counted and st.counted:
                promoted += 1
            if was_counted and not st.counted and not st.copies:
                self.n_lost_runs += 1
                self._c_lost.inc()
            if not st.copies and not st.targets:
                # Stranded: nothing durable, nothing in flight — the source
                # host must emit fresh copies (its lineage holds the run).
                self.pending_reemits.setdefault(st.src_host, []).append(key)
        if journal_touched and self.manifest is not None:
            # Entries journalled at the dead ASU first die wholesale, then
            # promoted sets re-log at a survivor: latest-entry-per-rid wins,
            # so restore sees exactly the surviving copy holders.
            self.manifest.log_purge_asu(d)
        for st in relog:
            st.journal_dest = min(st.copies)
            if self.manifest is not None:
                self.manifest.log_run_durable(st.rid, st.journal_dest, st.run)
        if promoted:
            self.n_promoted_runs += promoted
            self._c_promoted.inc(promoted)
            if self.tracer is not None:
                self.tracer.instant(
                    now, "replica",
                    f"promote {promoted} run(s) off asu{d} in place",
                    cat="fault",
                )
        self._refresh_under_gauge()
        return delta

    def lose_copies_on(self, d: int, now: float = 0.0) -> int:
        """``lose_replica`` fault: media loss on an alive ASU.

        Drops every durable copy held on ``d`` (the node keeps running, so
        ``d`` stays a valid future target).  Returns the durable-record
        delta; the anti-entropy loop detects the under-replication and
        re-replicates from the surviving copies.
        """
        delta = 0
        dropped = 0
        for key in sorted(self.sets):
            st = self.sets[key]
            if d not in st.copies:
                continue
            st.copies.discard(d)
            self._gv_copies.add(d, -1.0)
            dropped += 1
            delta += self._recount(st)
            if st.rid is not None and st.journal_dest == d:
                st.journal_dest = min(st.copies) if st.copies else None
                if st.journal_dest is not None and self.manifest is not None:
                    self.manifest.log_run_durable(st.rid, st.journal_dest, st.run)
            if not st.copies and not st.targets:
                self.pending_reemits.setdefault(st.src_host, []).append(key)
        if dropped and self.tracer is not None:
            self.tracer.instant(
                now, "replica", f"lose {dropped} cop(ies) on asu{d}",
                cat="fault",
            )
        self._refresh_under_gauge()
        return delta

    def on_asu_readmit(self, d: int) -> None:
        """ASU ``d`` rejoined the view: make it a valid target again.

        Physical copies it still holds are *not* trusted here — they were
        written under a dead epoch as far as the survivors know; the caller
        offers them back one by one through :meth:`readopt_copy` with a
        digest, and anything that doesn't verify stays discarded.
        """
        self._dead.discard(d)
        self._refresh_under_gauge()

    def readopt_copy(self, key, d: int, digest: str) -> tuple[int, bool]:
        """Offer a copy a returning ASU kept through its expulsion.

        Adopts the copy iff the set still exists, ``d`` does not already
        hold it, and ``digest`` matches the authoritative run — a divergent
        copy (the signature of a split-brain write) is counted and refused,
        leaving repair to the anti-entropy loop.  Returns
        ``(durable_delta, adopted)``; the delta is non-zero only when the
        set was stranded and this copy newly satisfies the write policy.
        """
        from ..recovery.manifest import digest_records

        st = self.sets.get(key)
        if st is None or d in self._dead:
            return 0, False
        if digest_records(st.run) != digest:
            self.n_divergent_copies += 1
            return 0, False
        if d in st.copies:
            return 0, False
        st.targets.discard(d)
        st.copies.add(d)
        self._gv_copies.add(d, 1.0)
        self.n_readopted_copies += 1
        delta = self._recount(st)
        self._refresh_under_gauge()
        return delta, True

    def on_host_crash(self, h: int) -> int:
        """Drop every set originated by dead host ``h``; returns the delta.

        Mirrors the legacy semantics: the host's fragments replay to
        survivors and re-sort into fresh runs, so its old runs must vanish
        everywhere (the runtime removes the physical copies by source-host
        tag).  Manifest-restored sets (key kind 1) survive — they are
        disk-durable with exact frag lineage, so a *new* crash of their
        original source host has nothing to replay and must not discard
        them.
        """
        delta = 0
        any_run = False
        for key in sorted(self.sets):
            st = self.sets[key]
            if st.src_host != h or key[0] == 1:
                continue
            if st.counted:
                delta -= int(st.run.shape[0])
            any_run = True
            for d in st.copies:
                self._gv_copies.add(d, -1.0)
            del self.sets[key]
        self.pending_reemits.pop(h, None)
        if any_run and self.manifest is not None:
            self.manifest.log_purge_host(h)
        self._refresh_under_gauge()
        return delta

    def retarget(self, key) -> list[int]:
        """Fresh targets for a stranded set (source-host re-emit path)."""
        st = self.sets.get(key)
        if st is None:
            return []
        want = min(self.config.r, self.n_asus - len(self._dead))
        missing = max(0, want - len(st.copies | st.targets))
        if not missing:
            return []
        fresh = [
            d
            for d in self.placement.replicas(_shard_key(key), self.n_asus)
            if d not in self._dead and d not in st.copies and d not in st.targets
        ][:missing]
        st.targets.update(fresh)
        self.n_retargeted_copies += len(fresh)
        self._c_retargeted.inc(len(fresh))
        return fresh

    # -- anti-entropy ---------------------------------------------------------
    def under_replicated_keys(self) -> list[tuple]:
        return [k for k in sorted(self.sets) if self._under_replicated(self.sets[k])]

    def next_repair_target(self, key) -> Optional[int]:
        """Next alive placement candidate not already holding/receiving."""
        st = self.sets.get(key)
        if st is None:
            return None
        for d in self.placement.replicas(_shard_key(key), self.n_asus):
            if d in self._dead or d in st.copies or d in st.targets:
                continue
            return d
        return None

    def pick_read_copy(self, st: ReplicaSet) -> Optional[int]:
        """Least-loaded alive copy holder by the read-bytes gauge vector."""
        alive = sorted(c for c in st.copies if c not in self._dead)
        if not alive:
            return None
        return pick_least_loaded(self._gv_read.values, alive)

    def note_read(self, d: int, nbytes: int) -> None:
        self._gv_read.add(d, float(nbytes))

    def read_plan(self) -> list[list[tuple[int, object]]]:
        """One read assignment per logical run for pass 2.

        Physical ``runs_on_asu`` holds up to ``r`` copies of every run; the
        merge must read each run exactly once, from the least-loaded alive
        holder (greedy over the ``repro_replica_read_bytes`` gauge vector —
        the gauge is both the decision input and the decision record, like
        the load manager's routing gauges).
        """
        plan: list[list[tuple[int, object]]] = [[] for _ in range(self.n_asus)]
        for key in sorted(self.sets):
            st = self.sets[key]
            d = self.pick_read_copy(st)
            if d is None:
                continue
            self.note_read(d, int(st.run.shape[0]))
            plan[d].append((st.bucket, st.run))
        return plan


def _shard_key(key: tuple) -> int:
    kind, a, b = key
    return (kind << 48) | ((a & 0xFFFFFF) << 24) | (b & 0xFFFFFF)
