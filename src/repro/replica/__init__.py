"""repro.replica — deterministic placement and r-way run replication.

Two layers:

- :mod:`~repro.replica.placement` — ASURA-style deterministic shard ->
  ordered-replica-set mapping: uniform within sampling noise, and resizing
  the fleet N -> N±1 relocates only ~1/N of assignments;
- :mod:`~repro.replica.manager` — the :class:`ReplicationManager` run by the
  fault-tolerant DSM-Sort pass: write fan-out under an ``all``/``quorum``
  policy, promotion-based takeover on ASU crash (zero run re-emission when
  r >= 2), gauge-steered read plans, and the anti-entropy repair loop.

See ``docs/REPLICATION.md`` for the design and the promotion-vs-replay
decision table.
"""

from .manager import ReplicaSet, ReplicationConfig, ReplicationManager
from .placement import SEGMENT, ReplicaPlacement

__all__ = [
    "ReplicaPlacement",
    "ReplicaSet",
    "ReplicationConfig",
    "ReplicationManager",
    "SEGMENT",
]
