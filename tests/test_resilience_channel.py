"""Tests for repro.resilience.channel: exactly-once over a lossy network.

Each scenario runs a ReliableEndpoint pair over a message-fault window
(drop/dup/delay/corrupt) and checks the end-to-end contract: every payload
delivered exactly once, in spite of the schedule — plus the negative case
(retries disabled ⇒ demonstrable loss) and the flow-control semantics.
"""

import numpy as np
import pytest

from repro.emulator.net import Message
from repro.emulator.params import SystemParams
from repro.emulator.platform import ActivePlatform
from repro.resilience import BreakerBoard, ReliableEndpoint, RetryPolicy
from repro.util import RngRegistry


def small_params(**over):
    base = dict(n_hosts=2, n_asus=4)
    base.update(over)
    return SystemParams(**base)


def run_exchange(
    window_faults=(),
    n_msgs=32,
    policy=None,
    until=5.0,
    inbox_capacity=None,
    consume_every=0.0,
    board=None,
):
    """Send ``n_msgs`` payloads asu0 -> host0 through ReliableEndpoints.

    ``window_faults`` is a list of (kind, t0, t1, extra) applied to the
    asu0<->host0 pair.  Returns (plat, endpoints-by-node-id, received ids).
    """
    plat = ActivePlatform(small_params())
    src, dst = plat.asus[0], plat.hosts[0]
    rngs = RngRegistry(7)
    policy = policy or RetryPolicy(timeout=0.002, max_backoff=0.02)
    eps = {
        n.node_id: ReliableEndpoint(
            plat, n, rng=rngs.get(f"rel.{n.node_id}"), policy=policy,
            board=board,
            inbox_capacity=inbox_capacity if n is dst else None,
        )
        for n in (src, dst)
    }
    for kind, t0, t1, extra in window_faults:
        plat.network.set_msg_fault(src.node_id, dst.node_id, kind, t0, t1, extra)
    got = []

    def sender():
        for i in range(n_msgs):
            yield from eps[src.node_id].send(dst.node_id, ("m", i), 256, tag="m")

    def receiver():
        while True:
            msg = yield from eps[dst.node_id].recv()
            got.append(msg.payload[1])
            if consume_every:
                yield plat.sim.timeout(consume_every)

    plat.spawn(sender(), name="sender", node=src)
    plat.spawn(receiver(), name="receiver", node=dst)
    plat.sim.run(until=until)
    return plat, eps, got


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="timeout must be positive"):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError, match="backoff must be at least 1"):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError, match="max_backoff"):
            RetryPolicy(timeout=0.1, max_backoff=0.05)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="window"):
            RetryPolicy(window=0)

    def test_grace_backoff_caps(self):
        p = RetryPolicy(timeout=0.01, backoff=2.0, max_backoff=0.05, jitter=0.0)
        assert p.grace(0, None) == 0.01
        assert p.grace(1, None) == 0.02
        assert p.grace(10, None) == 0.05  # capped

    def test_grace_jitter_is_seeded_and_bounded(self):
        p = RetryPolicy(timeout=0.01, jitter=0.25, max_backoff=0.1)
        rng = np.random.default_rng(3)
        draws = [p.grace(0, rng) for _ in range(50)]
        assert all(0.0075 <= g <= 0.0125 for g in draws)
        rng2 = np.random.default_rng(3)
        assert draws == [p.grace(0, rng2) for _ in range(50)]


class TestMessageValidation:
    def test_negative_nbytes_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            Message("a", "b", None, -1)

    def test_unhashable_endpoint_rejected(self):
        with pytest.raises(TypeError, match="src must be hashable"):
            Message(["a"], "b", None, 0)
        with pytest.raises(TypeError, match="dst must be hashable"):
            Message("a", {}, None, 0)


class TestExactlyOnce:
    def test_fault_free_no_retransmits(self):
        _, eps, got = run_exchange()
        assert sorted(got) == list(range(32))
        s = eps["asu0"].stats
        # The adaptive deadline (delivery instant + grace) must not fire
        # spuriously on a healthy link.
        assert s.n_retransmits == 0 and s.amplification() == 1.0

    def test_exactly_once_under_drop_window(self):
        _, eps, got = run_exchange([("drop_msg", 0.0, 0.05, 0.0)], until=8.0)
        assert sorted(got) == list(range(32))
        assert eps["asu0"].stats.n_retransmits > 0

    def test_exactly_once_under_dup_window(self):
        _, eps, got = run_exchange([("dup_msg", 0.0, 10.0, 0.0)])
        assert sorted(got) == list(range(32))
        assert eps["host0"].stats.n_dup_dropped > 0

    def test_exactly_once_under_delay_window(self):
        _, eps, got = run_exchange([("delay_msg", 0.0, 10.0, 0.004)], until=8.0)
        assert sorted(got) == list(range(32))

    def test_exactly_once_under_corrupt_window(self):
        _, eps, got = run_exchange([("corrupt_msg", 0.0, 0.05, 0.0)], until=8.0)
        assert sorted(got) == list(range(32))
        # Corrupted copies were rejected without ack and later retransmitted.
        assert eps["host0"].stats.n_corrupt_dropped > 0
        assert eps["asu0"].stats.n_retransmits > 0

    def test_exactly_once_under_combined_windows(self):
        _, eps, got = run_exchange(
            [
                ("drop_msg", 0.00, 0.03, 0.0),
                ("dup_msg", 0.02, 0.08, 0.0),
                ("corrupt_msg", 0.05, 0.09, 0.0),
                ("delay_msg", 0.01, 0.10, 0.003),
            ],
            until=10.0,
        )
        assert sorted(got) == list(range(32))

    def test_retries_disabled_loses_messages(self):
        # Negative control: max_attempts=1 under a drop window must lose
        # payloads — this is what proves the retransmission layer is doing
        # the work in the positive cases above.
        _, eps, got = run_exchange(
            [("drop_msg", 0.0, 1.0, 0.0)],
            policy=RetryPolicy(timeout=0.002, max_backoff=0.02, max_attempts=1),
            until=8.0,
        )
        s = eps["asu0"].stats
        assert s.n_gave_up > 0
        assert len(got) < 32 and len(set(got)) == len(got)

    def test_determinism(self):
        spec = dict(window_faults=[("drop_msg", 0.0, 0.05, 0.0)], until=8.0)
        _, eps_a, got_a = run_exchange(**spec)
        _, eps_b, got_b = run_exchange(**spec)
        assert got_a == got_b
        assert eps_a["asu0"].stats.as_dict() == eps_b["asu0"].stats.as_dict()


class TestFlowControl:
    def test_window_blocks_sender(self):
        # A one-credit window serialises sends behind acks: the sender spends
        # simulated time blocked in wait_window, visible in the stats.
        _, eps, got = run_exchange(
            policy=RetryPolicy(timeout=0.002, max_backoff=0.02, window=1),
        )
        assert sorted(got) == list(range(32))
        assert eps["asu0"].stats.window_wait_time > 0.0

    def test_bounded_inbox_backpressures_acks(self):
        # A slow consumer over a capacity-1 inbox stalls the receive loop,
        # which delays acks, which throttles the sender's window.
        _, eps, got = run_exchange(
            policy=RetryPolicy(timeout=0.05, max_backoff=0.5, window=2),
            inbox_capacity=1,
            consume_every=0.01,
            until=10.0,
        )
        assert sorted(got) == list(range(32))
        assert eps["asu0"].stats.window_wait_time > 0.0

    def test_cancel_peer_releases_window(self):
        plat = ActivePlatform(small_params())
        src, dst = plat.asus[0], plat.hosts[0]
        ep = ReliableEndpoint(
            plat, src, policy=RetryPolicy(timeout=0.002, max_backoff=0.02, window=2)
        )
        # Fill the window with posts that can never be acked (no endpoint on
        # the far side consumes protocol messages -> no acks).
        ep.post(dst.node_id, "x", 64)
        ep.post(dst.node_id, "y", 64)
        assert ep.inflight(dst.node_id) == 2
        waited = []

        def blocked():
            w = yield from ep.wait_window(dst.node_id)
            waited.append(w)

        plat.spawn(blocked(), name="blocked", node=src)
        plat.sim.schedule_callback(lambda: ep.cancel_peer(dst.node_id), delay=0.1)
        plat.sim.run(until=1.0)
        assert waited and waited[0] > 0.0
        assert ep.inflight(dst.node_id) == 0

    def test_passthrough_preserves_direct_messages(self):
        # Non-protocol messages (direct mailbox puts / plain network posts)
        # surface through recv untouched.
        plat = ActivePlatform(small_params())
        dst = plat.hosts[0]
        ep = ReliableEndpoint(plat, dst)
        got = []

        def receiver():
            msg = yield from ep.recv()
            got.append(msg)

        plat.spawn(receiver(), name="receiver", node=dst)
        plat.network.post(plat.asus[1].node_id, dst.node_id, ("plain", 7), 64, tag="ctl")
        plat.sim.run(until=1.0)
        assert got and got[0].payload == ("plain", 7)
        assert ep.stats.n_passthrough == 1


class TestBreakerIntegration:
    def test_drop_storm_trips_breaker(self):
        plat = ActivePlatform(small_params())
        board = BreakerBoard(plat.sim, fail_threshold=3, cooldown=0.5)
        src, dst = plat.asus[0], plat.hosts[0]
        ep = ReliableEndpoint(
            plat, src, policy=RetryPolicy(timeout=0.002, max_backoff=0.004),
            board=board,
        )
        ReliableEndpoint(plat, dst, board=board)
        plat.network.set_msg_fault(src.node_id, dst.node_id, "drop_msg", 0.0, 0.2, 0.0)

        def sender():
            for i in range(4):
                yield from ep.send(dst.node_id, ("m", i), 128)

        plat.spawn(sender(), name="sender", node=src)
        plat.sim.run(until=0.1)
        # Repeated delivery timeouts during the storm open the breaker ...
        assert not board.healthy(src.node_id, dst.node_id)
        assert board.n_trips() >= 1
        # Advance past the cooldown (a no-op event keeps the clock moving
        # once the protocol traffic has drained).
        plat.sim.schedule_callback(lambda: None, delay=2.0)
        plat.sim.run(until=2.5)
        # ... but retransmission continues regardless and eventually lands a
        # success; after the cooldown the breaker leaves quarantine
        # (half-open) and the link reads healthy again.
        assert board.healthy(src.node_id, dst.node_id)
        assert ep.stats.n_gave_up == 0


class TestDedupCheckpointRestore:
    def test_dedup_set_survives_endpoint_restart(self):
        """A receiver endpoint restarted from a dedup snapshot drops a full
        replay of already-delivered messages instead of re-delivering —
        exactly-once holds across a checkpoint restore."""
        plat = ActivePlatform(small_params())
        src, dst = plat.asus[0], plat.hosts[0]
        rngs = RngRegistry(7)
        policy = RetryPolicy(timeout=0.002, max_backoff=0.02)
        got = []

        def sender(ep):
            for i in range(8):
                yield from ep.send(dst.node_id, ("m", i), 256, tag="m")

        def receiver(ep):
            while True:
                msg = yield from ep.recv()
                got.append(msg.payload[1])

        ep_src = ReliableEndpoint(plat, src, rng=rngs.get("a"), policy=policy)
        ep_dst = ReliableEndpoint(plat, dst, rng=rngs.get("b"), policy=policy)
        plat.spawn(sender(ep_src), name="s", node=src)
        plat.spawn(receiver(ep_dst), name="r", node=dst)
        plat.sim.run(until=1.0)
        assert sorted(got) == list(range(8))

        snap = ep_dst.dedup_snapshot()
        assert len(snap) == 8
        # Snapshot is a copy: later traffic must not leak into it.
        ep_dst.shutdown()
        ep_src.shutdown()

        # Restart both sides.  The sender's send log survived the crash but
        # its acks did not, so it replays the same sequence numbers; the
        # restored dedup set must absorb every one of them.
        ep_src2 = ReliableEndpoint(plat, src, rng=rngs.get("a2"), policy=policy)
        ep_dst2 = ReliableEndpoint(plat, dst, rng=rngs.get("b2"), policy=policy)
        ep_dst2.restore_dedup(snap)
        plat.spawn(sender(ep_src2), name="s2", node=src)
        plat.spawn(receiver(ep_dst2), name="r2", node=dst)
        plat.sim.schedule_callback(lambda: None, delay=2.0)
        plat.sim.run(until=2.0)
        assert sorted(got) == list(range(8))  # no second delivery
        # every replayed message (plus any retransmissions) was dropped
        assert ep_dst2.stats.n_dup_dropped >= 8
        assert ep_dst2.stats.n_delivered == 0
        assert len(snap) == 8  # the endpoint never mutates the snapshot

    def test_restart_without_restore_would_redeliver(self):
        """Negative control: dropping the snapshot re-delivers the replayed
        messages — the restored dedup set is what earns exactly-once."""
        plat = ActivePlatform(small_params())
        src, dst = plat.asus[0], plat.hosts[0]
        rngs = RngRegistry(7)
        policy = RetryPolicy(timeout=0.002, max_backoff=0.02)
        got = []

        def sender(ep):
            for i in range(4):
                yield from ep.send(dst.node_id, ("m", i), 256, tag="m")

        def receiver(ep):
            while True:
                msg = yield from ep.recv()
                got.append(msg.payload[1])

        ep_src = ReliableEndpoint(plat, src, rng=rngs.get("a"), policy=policy)
        ep_dst = ReliableEndpoint(plat, dst, rng=rngs.get("b"), policy=policy)
        plat.spawn(sender(ep_src), name="s", node=src)
        plat.spawn(receiver(ep_dst), name="r", node=dst)
        plat.sim.run(until=1.0)
        assert sorted(got) == list(range(4))
        ep_dst.shutdown()
        ep_src.shutdown()

        ep_src2 = ReliableEndpoint(plat, src, rng=rngs.get("a2"), policy=policy)
        ep_dst2 = ReliableEndpoint(plat, dst, rng=rngs.get("b2"), policy=policy)
        plat.spawn(sender(ep_src2), name="s2", node=src)
        plat.spawn(receiver(ep_dst2), name="r2", node=dst)
        plat.sim.schedule_callback(lambda: None, delay=2.0)
        plat.sim.run(until=2.0)
        assert sorted(got) == sorted(list(range(4)) * 2)  # duplicates!
        assert ep_dst2.stats.n_delivered == 4  # all replays re-delivered


class TestPartitionLengthDelays:
    """Partition-scale outages against the reliable channel: dedup must hold
    across a breaker open/re-close cycle, and epoch-fenced cancellations must
    leak no flow-control credits (docs/PARTITIONS.md)."""

    def test_exactly_once_across_partition_window(self):
        # A symmetric cut outliving many retry timeouts: every in-flight
        # message is silently lost to the route for the whole window, yet
        # retransmission outlives the cut and exactly-once holds.
        plat = ActivePlatform(small_params())
        src, dst = plat.asus[0], plat.hosts[0]
        rngs = RngRegistry(7)
        policy = RetryPolicy(timeout=0.002, max_backoff=0.02)
        eps = {
            n.node_id: ReliableEndpoint(
                plat, n, rng=rngs.get(f"rel.{n.node_id}"), policy=policy
            )
            for n in (src, dst)
        }
        plat.network.set_partition({src.node_id}, 0.0, 0.2)
        got = []

        def sender():
            for i in range(16):
                yield from eps[src.node_id].send(dst.node_id, ("m", i), 256, tag="m")

        def receiver():
            while True:
                msg = yield from eps[dst.node_id].recv()
                got.append(msg.payload[1])

        plat.spawn(sender(), name="sender", node=src)
        plat.spawn(receiver(), name="receiver", node=dst)
        plat.sim.run(until=5.0)
        assert sorted(got) == list(range(16))
        assert plat.network.n_partition_dropped > 0
        assert eps[src.node_id].stats.n_retransmits > 0

    def test_dedup_holds_across_breaker_open_and_reclose(self):
        # A partition-length delay window: originals arrive long after the
        # sender presumed them lost, so the receiver sees original+retransmit
        # pairs.  The storm trips the breaker; after the window it re-closes.
        # The dedup filter must absorb every late copy through both phases.
        plat = ActivePlatform(small_params())
        board = BreakerBoard(plat.sim, fail_threshold=3, cooldown=0.1)
        src, dst = plat.asus[0], plat.hosts[0]
        rngs = RngRegistry(7)
        policy = RetryPolicy(timeout=0.002, max_backoff=0.01)
        ep_src = ReliableEndpoint(
            plat, src, rng=rngs.get("a"), policy=policy, board=board
        )
        ep_dst = ReliableEndpoint(plat, dst, rng=rngs.get("b"), policy=policy,
                                  board=board)
        plat.network.set_msg_fault(
            src.node_id, dst.node_id, "delay_msg", 0.0, 0.2, 0.05
        )
        got = []

        def sender():
            for i in range(16):
                yield from ep_src.send(dst.node_id, ("m", i), 256, tag="m")

        def receiver():
            while True:
                msg = yield from ep_dst.recv()
                got.append(msg.payload[1])

        plat.spawn(sender(), name="sender", node=src)
        plat.spawn(receiver(), name="receiver", node=dst)
        plat.sim.run(until=0.15)
        assert board.n_trips() >= 1  # the delay storm opened the breaker
        plat.sim.schedule_callback(lambda: None, delay=3.0)
        plat.sim.run(until=3.5)
        assert sorted(got) == list(range(16))  # exactly once, no replays
        assert ep_dst.stats.n_dup_dropped > 0  # late copies were absorbed
        assert board.healthy(src.node_id, dst.node_id)  # breaker re-closed

    def test_fenced_deliveries_leak_no_credits(self):
        # fence_outbound releases the credit of every cancelled transfer:
        # a sender blocked on the window at fencing time must wake, and the
        # window must be fully available afterwards.
        plat = ActivePlatform(small_params())
        src, dst = plat.asus[0], plat.hosts[0]
        ep = ReliableEndpoint(
            plat, src, policy=RetryPolicy(timeout=0.002, max_backoff=0.02, window=2)
        )
        # Posts into a cut: never acked (the partition swallows them).
        plat.network.set_partition({src.node_id}, 0.0, 10.0)
        ep.post(dst.node_id, "x", 64, tag="frags")
        ep.post(dst.node_id, "y", 64, tag="eof")
        assert ep.inflight(dst.node_id) == 2
        woke = []

        def blocked():
            w = yield from ep.wait_window(dst.node_id)
            woke.append(w)

        plat.spawn(blocked(), name="blocked", node=src)
        fenced = []
        plat.sim.schedule_callback(
            lambda: fenced.extend(ep.fence_outbound(tags=("frags", "eof"))),
            delay=0.05,
        )
        plat.sim.run(until=1.0)
        assert [e.payload for e in fenced] == ["x", "y"]
        assert all(e.cancelled and not e.acked for e in fenced)
        assert woke and woke[0] > 0.0  # the waiter was released...
        assert ep.inflight(dst.node_id) == 0  # ...and no credit leaked

    def test_fence_outbound_filters_by_tag(self):
        plat = ActivePlatform(small_params())
        src, dst = plat.asus[0], plat.hosts[0]
        ep = ReliableEndpoint(plat, src, policy=RetryPolicy(timeout=0.002,
                                                            max_backoff=0.02))
        plat.network.set_partition({src.node_id}, 0.0, 10.0)
        ep.post(dst.node_id, "data", 64, tag="frags")
        ep.post(dst.node_id, "ctl", 64, tag="lease")
        fenced = ep.fence_outbound(tags=("frags",))
        assert [e.payload for e in fenced] == ["data"]
        assert ep.inflight(dst.node_id) == 1  # the untagged transfer stands

    def test_revive_peer_resumes_delivery_without_resurrecting_cancels(self):
        # cancel_peer (expulsion) stops retransmission; revive_peer (heal +
        # re-admission) resumes delivery for *new* traffic only — transfers
        # cancelled while the peer was out stay cancelled.
        plat = ActivePlatform(small_params())
        src, dst = plat.asus[0], plat.hosts[0]
        rngs = RngRegistry(7)
        policy = RetryPolicy(timeout=0.002, max_backoff=0.02)
        ep_src = ReliableEndpoint(plat, src, rng=rngs.get("a"), policy=policy)
        ep_dst = ReliableEndpoint(plat, dst, rng=rngs.get("b"), policy=policy)
        plat.network.set_partition({src.node_id}, 0.0, 0.2)
        got = []

        def receiver():
            while True:
                msg = yield from ep_dst.recv()
                got.append(msg.payload)

        plat.spawn(receiver(), name="receiver", node=dst)
        old = ep_src.post(dst.node_id, "stale", 64, tag="m")
        plat.sim.schedule_callback(lambda: ep_src.cancel_peer(dst.node_id), delay=0.05)
        plat.sim.schedule_callback(lambda: ep_src.revive_peer(dst.node_id), delay=0.3)
        plat.sim.schedule_callback(
            lambda: ep_src.post(dst.node_id, "fresh", 64, tag="m"), delay=0.4
        )
        plat.sim.run(until=2.0)
        assert got == ["fresh"]  # delivery resumed for post-revive traffic
        assert old.cancelled  # the pre-expulsion transfer stayed dead
