"""Tests for the bench harness: report rendering and small-scale figure runs."""

import pytest

from repro.bench import (
    ascii_plot,
    fig9_params,
    render_series_table,
    render_table,
    run_figure9,
    run_figure10,
)
from repro.emulator.net import Network
from repro.sim import Simulator


class TestRenderers:
    def test_render_table_alignment(self):
        out = render_table(["x", "value"], [[1, 0.5], [20, 1.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "value" in lines[1]
        assert "0.500" in out and "1.250" in out

    def test_render_series_table(self):
        out = render_series_table("d", [2, 4], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert "d" in out and "a" in out and "b" in out
        assert "4.000" in out

    def test_ascii_plot_contains_marks_and_legend(self):
        out = ascii_plot([1.0, 2.0], {"s1": [0.5, 1.5], "s2": [1.0, 1.0]})
        assert "o=s1" in out and "x=s2" in out
        assert "o" in out

    def test_ascii_plot_empty(self):
        assert "no data" in ascii_plot([], {}, title="empty")

    def test_ascii_plot_constant_series(self):
        out = ascii_plot([1.0, 2.0], {"flat": [1.0, 1.0]})
        assert "flat" in out


class TestFigureHarness:
    def test_figure9_tiny_run_has_all_series(self):
        r = run_figure9(
            n_records=1 << 13,
            asu_counts=(2, 8),
            alphas=(1, 16),
            include_adaptive=True,
        )
        assert set(r.speedup) == {"1", "16", "adaptive"}
        assert len(r.speedup["1"]) == 2
        assert len(r.baseline_makespan) == 2
        assert all(t > 0 for t in r.baseline_makespan)
        assert "Figure 9" in r.render()

    def test_figure9_adaptive_tracks_envelope_even_tiny(self):
        r = run_figure9(
            n_records=1 << 13, asu_counts=(8,), alphas=(1, 16), include_adaptive=True
        )
        env = max(r.speedup["1"][0], r.speedup["16"][0])
        assert r.speedup["adaptive"][0] >= env - 0.25

    def test_figure10_tiny_run_structure(self):
        r = run_figure10(n_records=1 << 14)
        assert r.makespan_managed < r.makespan_static
        assert set(r.series) == {
            "static.host0", "static.host1", "managed.host0", "managed.host1"
        }
        for vals in r.series.values():
            assert len(vals) == len(r.times)
        assert "Figure 10" in r.render()

    def test_fig9_params_family(self):
        p = fig9_params(n_asus=4, c=4.0)
        assert p.n_asus == 4
        assert p.asu_clock_hz == pytest.approx(p.host_clock_hz / 4.0)


class TestNetworkPost:
    def test_post_orders_with_send(self):
        sim = Simulator()
        net = Network(sim, bandwidth=1000.0, latency=0.0)
        net.register("a")
        net.register("b")
        got = []

        def sender():
            net.post("a", "b", "first", 100)
            net.post("a", "b", "second", 100)
            yield sim.timeout(0)

        def receiver():
            for _ in range(2):
                msg = yield from net.recv("b")
                got.append((msg.payload, sim.now))

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert [g[0] for g in got] == ["first", "second"]
        # Link serialisation still applies to posted messages.
        assert got[0][1] == pytest.approx(0.1)
        assert got[1][1] == pytest.approx(0.2)

    def test_post_does_not_block_caller(self):
        sim = Simulator()
        net = Network(sim, bandwidth=10.0, latency=0.0)  # very slow link
        net.register("a")
        net.register("b")

        def sender():
            net.post("a", "b", None, 1000)  # 100s of wire time
            return sim.now
            yield  # makes this a generator; never reached

        p = sim.process(sender())

        def receiver():
            yield from net.recv("b")

        sim.process(receiver())
        sim.run()
        assert p.value == 0.0

    def test_post_unregistered_rejected(self):
        sim = Simulator()
        net = Network(sim, bandwidth=10.0, latency=0.0)
        net.register("a")
        with pytest.raises(KeyError):
            net.post("a", "ghost", None, 1)


class TestCsvExport:
    def test_fig9_csv_shape(self):
        r = run_figure9(
            n_records=1 << 13, asu_counts=(2, 8), alphas=(1,), include_adaptive=False
        )
        csv = r.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "asus,1"
        assert len(lines) == 3
        assert lines[1].startswith("2,")

    def test_fig10_csv_shape(self):
        r = run_figure10(n_records=1 << 14)
        lines = r.to_csv().strip().splitlines()
        assert lines[0].startswith("t,")
        assert len(lines) == len(r.times) + 1
        # every row has the header's column count
        ncols = lines[0].count(",")
        assert all(l.count(",") == ncols for l in lines)
