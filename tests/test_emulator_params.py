"""Tests for SystemParams."""

import pytest

from repro.emulator.params import SystemParams, TimingMode
from repro.util.units import MHZ


class TestSystemParams:
    def test_defaults_match_paper(self):
        p = SystemParams()
        assert p.host_clock_hz == pytest.approx(750 * MHZ)
        assert p.asu_ratio == 8.0
        assert p.schema.record_size == 128
        assert p.schema.key_size == 4

    def test_asu_clock_is_host_over_c(self):
        p = SystemParams(asu_ratio=4.0)
        assert p.asu_clock_hz == pytest.approx(p.host_clock_hz / 4.0)

    def test_half_power_at_hosts_example(self):
        # §2.2: "if half the total processing power is at the hosts..."
        # With c=8, one host equals 8 ASUs; so H=1, D=8 gives a 50/50 split.
        p = SystemParams(n_hosts=1, n_asus=8, asu_ratio=8.0)
        assert p.host_compute_fraction == pytest.approx(0.5)

    def test_total_compute(self):
        p = SystemParams(n_hosts=2, n_asus=16, asu_ratio=8.0)
        expected = 2 * p.host_clock_hz + 16 * p.host_clock_hz / 8.0
        assert p.total_compute_hz == pytest.approx(expected)

    def test_block_bytes(self):
        p = SystemParams(block_records=1024)
        assert p.block_bytes == 1024 * 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_hosts": 0},
            {"n_asus": 0},
            {"asu_ratio": 0},
            {"asu_ratio": -1},
            {"disk_rate": 0},
            {"net_bandwidth": -5},
            {"timing_mode": "warp"},
            {"block_records": 0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SystemParams(**kwargs)

    def test_with_returns_modified_copy(self):
        p = SystemParams()
        q = p.with_(n_asus=32)
        assert q.n_asus == 32
        assert p.n_asus == 8
        assert q.host_clock_hz == p.host_clock_hz

    def test_describe_mentions_key_fields(self):
        d = SystemParams(n_hosts=2, n_asus=16).describe()
        assert "H=2" in d and "D=16" in d and "c=8" in d

    def test_timing_modes(self):
        assert TimingMode.MODELED in TimingMode.ALL
        assert TimingMode.MEASURED in TimingMode.ALL
        SystemParams(timing_mode=TimingMode.MEASURED)  # accepted


class TestHeterogeneousHosts:
    def test_multipliers_applied(self):
        p = SystemParams(n_hosts=3, host_clock_multipliers=(1.0, 0.5, 2.0))
        assert p.host_clock_of(0) == pytest.approx(p.host_clock_hz)
        assert p.host_clock_of(1) == pytest.approx(p.host_clock_hz * 0.5)
        assert p.total_host_clock_hz == pytest.approx(p.host_clock_hz * 3.5)

    def test_homogeneous_default(self):
        p = SystemParams(n_hosts=2)
        assert p.host_clock_of(0) == p.host_clock_of(1) == p.host_clock_hz
        assert p.total_host_clock_hz == pytest.approx(2 * p.host_clock_hz)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="host_clock_multipliers"):
            SystemParams(n_hosts=2, host_clock_multipliers=(1.0,))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SystemParams(n_hosts=2, host_clock_multipliers=(1.0, 0.0))

    def test_platform_builds_unequal_hosts(self):
        from repro.emulator import ActivePlatform

        p = SystemParams(n_hosts=2, host_clock_multipliers=(1.0, 0.25))
        plat = ActivePlatform(p)
        assert plat.hosts[0].cpu.clock_hz == pytest.approx(4 * plat.hosts[1].cpu.clock_hz)

    def test_compute_fraction_uses_aggregate(self):
        # 1 full host + 8 c=8 ASUs is a 50/50 split; halving the host's
        # clock shifts the balance toward the ASUs.
        full = SystemParams(n_hosts=1, n_asus=8, asu_ratio=8.0)
        half = SystemParams(
            n_hosts=1, n_asus=8, asu_ratio=8.0, host_clock_multipliers=(0.5,)
        )
        assert full.host_compute_fraction == pytest.approx(0.5)
        assert half.host_compute_fraction == pytest.approx(1 / 3)
