"""Smoke tests: every example script's main() runs and tells its story.

Examples are documentation that executes; these tests keep them from
rotting.  The slowest sweeps (figure9, adaptive across 64 ASUs) are covered
by the bench suite instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize(
    "name,expect",
    [
        ("quickstart", "verified"),
        ("skew_load_management", "load management finished"),
        ("terraflow_demo", "active-storage speedup per step"),
        ("rtree_demo", "both organisations agree"),
        ("active_filter", "interconnect traffic"),
        ("dataflow_pipeline", "identical outputs"),
        ("fault_recovery", "verified sorted despite the crash"),
        ("multi_tenant", "fair share beats FIFO on Jain fairness"),
    ],
)
def test_example_runs(name, expect, capsys):
    mod = load_example(name)
    mod.main()
    out = capsys.readouterr().out
    assert expect in out


def test_figure10_example_with_small_n(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["figure10.py", "14"])
    load_example("figure10").main()
    assert "Figure 10" in capsys.readouterr().out
