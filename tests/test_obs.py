"""Tests for repro.obs: causal graph, critical path, blame attribution,
what-if replay, SLO burn-rate monitoring, and the critpath CLI."""

import json

import pytest

from repro.obs import (
    BLAME_BUCKETS,
    BurnRule,
    CausalGraph,
    SLOMonitor,
    folded_stacks,
    render_timeline,
    run_critpath,
    run_critpath_serve,
)
from repro.trace import Tracer


# ---------------------------------------------------------------------------
# CausalGraph on hand-built traces
# ---------------------------------------------------------------------------
class TestCausalGraph:
    def _two_node_flow(self):
        tr = Tracer()
        tr.span(0.0, 1.0, "asu0.cpu", "produce", cat="cpu")
        tr.span(2.0, 3.0, "host0.cpu", "consume", cat="cpu")
        tr.flow(1.0, "asu0.cpu", 2.0, "host0.cpu", "msg", cat="net")
        return CausalGraph.from_tracer(tr)

    def test_flow_connects_tracks(self):
        g = self._two_node_flow()
        assert len(g.nodes) == 2
        path = g.critical_path()
        assert [n.name for n in path] == ["produce", "consume"]

    def test_blame_sums_to_makespan(self):
        g = self._two_node_flow()
        blame = g.blame()
        assert sum(blame.values()) == pytest.approx(g.makespan)
        assert blame["cpu"] == pytest.approx(2.0)
        assert blame["net"] == pytest.approx(1.0)  # the 1s flow gap

    def test_lane_gap_is_queue_wait(self):
        tr = Tracer()
        tr.span(0.0, 1.0, "a.cpu", "x", cat="cpu")
        tr.span(3.0, 4.0, "a.cpu", "y", cat="cpu")
        g = CausalGraph.from_tracer(tr)
        blame = g.blame()
        assert blame["queue-wait"] == pytest.approx(2.0)
        assert blame["cpu"] == pytest.approx(2.0)

    def test_virtual_nodes_bridge_spanless_tracks(self):
        tr = Tracer()
        tr.span(0.0, 1.0, "a.cpu", "tx", cat="cpu")
        tr.flow(1.0, "a.cpu", 1.5, "mbox:b", "deliver", cat="net")
        tr.flow(1.5, "mbox:b", 2.0, "b.cpu", "consume", cat="queue")
        tr.span(2.0, 3.0, "b.cpu", "work", cat="cpu")
        g = CausalGraph.from_tracer(tr)
        virtual = [n for n in g.nodes if n.virtual]
        assert len(virtual) == 1 and virtual[0].track == "mbox:b"
        path = g.critical_path()
        assert [n.track for n in path] == ["a.cpu", "mbox:b", "b.cpu"]

    def test_phase_spans_excluded(self):
        tr = Tracer()
        tr.span(0.0, 10.0, "job", "pass1", cat="phase", sid="pass1")
        tr.span(1.0, 2.0, "a.cpu", "x", cat="cpu")
        g = CausalGraph.from_tracer(tr)
        assert len(g.nodes) == 1
        assert g.nodes[0].cat == "cpu"

    def test_slack_zero_on_critical_chain(self):
        g = self._two_node_flow()
        slack = dict((n.name, s) for n, s in g.slack())
        assert slack["consume"] == pytest.approx(0.0)
        # producer could slip by the 1s flow gap without moving the makespan
        assert slack["produce"] == pytest.approx(1.0)

    def test_preemption_and_sched_cats_bucketed(self):
        tr = Tracer()
        tr.span(0.0, 1.0, "sched:t:j0", "queued", cat="sched-queue")
        tr.span(1.0, 2.0, "sched:t:j0", "evicted:app", cat="preemption")
        tr.span(2.0, 5.0, "sched:t:j0", "app", cat="sched-run")
        g = CausalGraph.from_tracer(tr)
        blame = g.blame()
        assert blame["scheduler-queueing"] == pytest.approx(1.0)
        assert blame["preemption"] == pytest.approx(1.0)
        assert blame["service"] == pytest.approx(3.0)


class TestWhatIf:
    def test_identity_replay(self):
        tr = Tracer()
        tr.span(0.0, 1.0, "a.disk", "read", cat="disk")
        tr.flow(1.0, "a.disk", 1.0, "a.cpu", "read-done", cat="queue")
        tr.span(1.0, 2.0, "a.cpu", "work", cat="cpu")
        g = CausalGraph.from_tracer(tr)
        assert g.what_if({}) == pytest.approx(g.makespan)
        assert g.what_if({"disk": 1.0, "cpu": 1.0}) == pytest.approx(g.makespan)

    def test_disk_speedup_compresses_disk_bound_chain(self):
        tr = Tracer()
        tr.span(0.0, 2.0, "a.disk", "read", cat="disk")
        tr.flow(2.0, "a.disk", 2.0, "a.cpu", "read-done", cat="queue")
        tr.span(2.0, 2.5, "a.cpu", "work", cat="cpu")
        g = CausalGraph.from_tracer(tr)
        # 2s disk -> 1s; cpu work slides earlier: 2.5 -> 1.5
        assert g.what_if({"disk": 2.0}) == pytest.approx(1.5)

    def test_gating_pred_wins_over_non_gating(self):
        # cpu chain is dense but each link waits on a slower disk read;
        # halving disk time must compress the chain.
        tr = Tracer()
        t = 0.0
        for i in range(3):
            tr.span(t, t + 1.0, "a.disk", f"read{i}", cat="disk")
            tr.flow(t + 1.0, "a.disk", t + 1.0, "a.cpu", "done", cat="queue")
            tr.span(t + 1.0, t + 1.1, "a.cpu", f"work{i}", cat="cpu")
            t += 1.0
        g = CausalGraph.from_tracer(tr)
        predicted = g.what_if({"disk": 2.0})
        assert predicted < g.makespan * 0.7

    def test_invalid_factor_raises(self):
        g = CausalGraph.from_tracer(Tracer())
        with pytest.raises(ValueError):
            g.what_if({"disk": 0.0})


# ---------------------------------------------------------------------------
# end-to-end: traced sort -> graph -> blame -> what-if validation
# ---------------------------------------------------------------------------
class TestCritPathSort:
    @pytest.fixture(scope="class")
    def sort_run(self):
        return run_critpath(1 << 12, seed=3, what_if={"disk": 2.0}, validate=True)

    def test_blame_covers_makespan(self, sort_run):
        report, graph = sort_run
        blame = report.blame
        assert sum(blame.values()) == pytest.approx(report.makespan)
        # a Figure-9 cell exercises cpu, disk, and the network
        assert blame["cpu"] > 0.0
        assert blame["disk"] > 0.0

    def test_blame_byte_deterministic(self, sort_run):
        report, _g = sort_run
        report2, _g2 = run_critpath(
            1 << 12, seed=3, what_if={"disk": 2.0}, validate=True
        )
        assert report.to_json() == report2.to_json()

    def test_what_if_within_10pct_of_rerun(self, sort_run):
        report, _g = sort_run
        w = report.what_if
        assert w["measured_makespan"] is not None
        assert w["error_pct"] <= 10.0, w

    def test_folded_stacks_deterministic_microseconds(self, sort_run):
        _report, graph = sort_run
        s1 = folded_stacks(graph)
        s2 = folded_stacks(graph)
        assert s1 == s2
        for line in s1.strip().split("\n"):
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) >= 0
            assert stack.split(";")[0] in BLAME_BUCKETS

    def test_timeline_renders(self, sort_run):
        _report, graph = sort_run
        text = render_timeline(graph)
        assert "#" in text and "asu0" in text

    def test_report_json_roundtrip(self, sort_run):
        report, _g = sort_run
        doc = json.loads(report.to_json())
        assert doc["schema_version"] == 1
        assert set(doc["blame"]) == set(BLAME_BUCKETS)

    def test_tracing_zero_perturbation(self, sort_run):
        # the traced makespan equals an untraced run's makespan
        report, _g = sort_run
        from repro.core.config import ConfigSolver
        from repro.dsmsort import DsmSortJob
        from repro.obs import critpath_params

        params = critpath_params()
        cfg = ConfigSolver(params).config_for_alpha(1 << 12, 8)
        job = DsmSortJob(params, cfg, policy="sr", seed=3)
        m = job.run_pass1().makespan + job.run_pass2().makespan
        assert m == report.makespan


# ---------------------------------------------------------------------------
# SLO burn-rate monitoring
# ---------------------------------------------------------------------------
class TestSLOMonitor:
    RULE = BurnRule("r", target=0.9, long_window=10.0, short_window=1.0,
                    factor=1.0)

    def test_no_alert_while_healthy(self):
        mon = SLOMonitor([self.RULE])
        for i in range(50):
            mon.record(0.1 * i, "t", good=True)
        assert mon.alerts == []
        assert not mon.is_firing("t", "r")

    def test_alert_fires_on_sustained_burn(self):
        mon = SLOMonitor([self.RULE])
        for i in range(20):
            mon.record(0.1 * i, "t", good=True)
        for i in range(20, 40):
            mon.record(0.1 * i, "t", good=(i % 2 == 0))  # 50% bad >> 10% budget
        assert mon.is_firing("t", "r")
        assert len(mon.alerts) >= 1
        assert mon.first_alert("t").tenant == "t"

    def test_short_window_gates_stale_burn(self):
        # a burst of misses long ago must not alert once the short window
        # is clean again
        mon = SLOMonitor([self.RULE])
        for i in range(10):
            mon.record(0.1 * i, "t", good=False)
        n_after_burst = len(mon.alerts)
        for i in range(50):
            mon.record(2.0 + 0.1 * i, "t", good=True)
        assert not mon.is_firing("t", "r")
        assert len(mon.alerts) == n_after_burst

    def test_tenants_independent(self):
        mon = SLOMonitor([self.RULE])
        for i in range(30):
            mon.record(0.1 * i, "bad", good=False)
            mon.record(0.1 * i, "good", good=True)
        assert mon.is_firing("bad", "r")
        assert not mon.is_firing("good", "r")

    def test_registry_gauge_tracks_state(self):
        from repro.metrics import MetricsRegistry

        reg = MetricsRegistry()
        mon = SLOMonitor([self.RULE], registry=reg)
        for i in range(30):
            mon.record(0.1 * i, "t", good=False)
        gauge = reg.gauge("repro_slo_burn_alert", tenant="t", rule="r")
        assert gauge.value == 1.0
        for i in range(100):
            mon.record(4.0 + 0.1 * i, "t", good=True)
        assert gauge.value == 0.0

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            BurnRule("x", target=1.5, long_window=1.0, short_window=0.1)
        with pytest.raises(ValueError):
            BurnRule("x", target=0.9, long_window=1.0, short_window=2.0)
        with pytest.raises(ValueError):
            SLOMonitor([self.RULE, self.RULE])

    def test_as_dict_deterministic(self):
        def build():
            mon = SLOMonitor([self.RULE])
            for i in range(40):
                mon.record(0.1 * i, "t", good=(i % 3 == 0))
            return json.dumps(mon.as_dict(), sort_keys=True)

        assert build() == build()


# ---------------------------------------------------------------------------
# serve-mode integration: scheduler spans + alerts-before-miss
# ---------------------------------------------------------------------------
class TestCritPathServe:
    @pytest.fixture(scope="class")
    def serve_run(self):
        return run_critpath_serve(n_jobs=40, seed=0, policy="fifo",
                                  load_factor=6.0)

    def test_outcome_unchanged_by_observability(self, serve_run):
        _report, _graph, serve = serve_run
        from repro.sched import run_serve

        plain = run_serve(policies=("fifo",), load_factors=(6.0,),
                          n_jobs=40, seed=0)
        assert serve.cells[0] == plain.cells[0]

    def test_sched_tracks_present(self, serve_run):
        _report, graph, _serve = serve_run
        cats = {n.cat for n in graph.nodes}
        assert "sched-queue" in cats and "sched-run" in cats

    def test_saturated_cell_raises_alerts(self, serve_run):
        report, _graph, serve = serve_run
        assert report.slo["alerts"], "saturated fifo cell must burn budget"
        assert serve.cells[0]["slo_attainment"] < 1.0

    def test_alert_fires_before_first_recorded_miss(self):
        # The monitor is fed the *predicted* outcome at dispatch time, so
        # an at-risk tenant alerts before any miss is actually recorded at
        # job completion.
        from repro.sched import (
            Arrival,
            JobSpec,
            ResourceNeed,
            Scheduler,
            Tenant,
        )
        from repro.sched.serve import serve_params

        def arrivals(deadline):
            return [
                Arrival(
                    t=0.001 * i,
                    spec=JobSpec(
                        app="filterscan", n_records=1024, seed=0,
                        deadline=deadline,
                        need=ResourceNeed(n_asus=2, n_hosts=1),
                    ),
                    tenant="t",
                    template="t-filterscan",
                )
                for i in range(10)
            ]

        # probe run: pick a deadline roughly half the jobs will miss
        probe = Scheduler(serve_params(), [Tenant("t")], "fifo")
        out = probe.run(arrivals(None))
        turnarounds = sorted(j.turnaround for j in out.jobs)
        deadline = turnarounds[len(turnarounds) // 2]

        mon = SLOMonitor([
            BurnRule("fast", target=0.9, long_window=out.makespan,
                     short_window=out.makespan / 8.0, factor=1.0),
        ])
        sched = Scheduler(serve_params(), [Tenant("t")], "fifo",
                          slo_monitor=mon)
        out2 = sched.run(arrivals(deadline))
        misses = [j for j in out2.jobs if j.slo_met is False]
        assert misses, "probe-derived deadline must produce misses"
        assert mon.alerts, "burn-rate rule must fire on an at-risk tenant"
        first_alert = mon.first_alert("t")
        assert first_alert.t <= min(j.finish_t for j in misses)

    def test_blame_uses_scheduler_buckets(self, serve_run):
        report, _graph, _serve = serve_run
        assert report.blame["scheduler-queueing"] + report.blame["service"] > 0.0

    def test_report_deterministic(self, serve_run):
        report, _graph, _serve = serve_run
        report2, _g2, _s2 = run_critpath_serve(
            n_jobs=40, seed=0, policy="fifo", load_factor=6.0
        )
        assert report.to_json() == report2.to_json()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCritPathCLI:
    def test_cli_writes_deterministic_artifacts(self, tmp_path, capsys):
        from repro.__main__ import main

        out1 = tmp_path / "b1.json"
        out2 = tmp_path / "b2.json"
        f1 = tmp_path / "s1.folded"
        f2 = tmp_path / "s2.folded"
        args = ["critpath", "--n", "11", "--seed", "3"]
        assert main(args + ["--out", str(out1), "--folded", str(f1)]) == 0
        assert main(args + ["--out", str(out2), "--folded", str(f2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        assert f1.read_bytes() == f2.read_bytes()
        doc = json.loads(out1.read_text())
        assert doc["mode"] == "sort"
        assert sum(doc["blame"].values()) == pytest.approx(doc["makespan"])
        assert "critical path blame" in capsys.readouterr().out

    def test_cli_matches_committed_golden(self, tmp_path, capsys):
        # same invocation as the critpath-smoke CI job; regenerate the
        # golden with `python -m repro critpath --n 11 --seed 3 --out
        # benchmarks/baseline/CRITPATH_blame.json` if a change is deliberate
        import pathlib

        from repro.__main__ import main

        golden = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks" / "baseline" / "CRITPATH_blame.json"
        )
        out = tmp_path / "blame.json"
        assert main(["critpath", "--n", "11", "--seed", "3",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert out.read_bytes() == golden.read_bytes()

    def test_cli_what_if_parse_error(self, capsys):
        from repro.__main__ import main

        assert main(["critpath", "--what-if", "disk=fast"]) == 2
        assert "--what-if" in capsys.readouterr().err
