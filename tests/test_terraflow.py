"""Tests for TerraFlow: grids, restructure, watershed, flow accumulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.terraflow import (
    TerrainGrid,
    cells_as_set,
    cone_dem,
    d8_directions,
    flow_accumulation,
    flow_accumulation_reference,
    restructure,
    restructure_blocked,
    sortable_f64_key,
    synthetic_dem,
    terraflow_pipeline,
    watershed_labels,
    watershed_reference,
)
from repro.util.rng import RngRegistry


@pytest.fixture
def rng():
    return RngRegistry(21).get("dem")


class TestGrid:
    def test_shape_and_ids(self):
        g = TerrainGrid(np.zeros((3, 4)))
        assert g.n_cells == 12
        assert g.cell_id(1, 2) == 6
        assert g.rc(6) == (1, 2)

    def test_neighbors_interior_and_corner(self):
        g = TerrainGrid(np.zeros((3, 3)))
        assert len(g.neighbors_of(4)) == 8  # center
        assert len(g.neighbors_of(0)) == 3  # corner

    def test_elevation_order_strict_total_order(self):
        g = TerrainGrid(np.array([[1.0, 1.0], [0.0, 1.0]]))
        order = g.elevation_order()
        assert order[0] == 2  # the unique minimum first
        assert sorted(order.tolist()) == [0, 1, 2, 3]
        # Ties broken by id: cells 0, 1, 3 (all elev 1) in id order.
        assert order[1:].tolist() == [0, 1, 3]

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            TerrainGrid(np.zeros(5))

    def test_synthetic_dem_has_pits(self, rng):
        g = synthetic_dem(20, 20, rng, n_pits=3)
        assert g.shape == (20, 20)

    def test_cone_dem_minimum_at_center(self):
        g = cone_dem(11, 11)
        assert g.elev[5, 5] == g.elev.min()


class TestRestructure:
    def test_records_self_contained(self):
        g = TerrainGrid(np.arange(12, dtype=float).reshape(3, 4))
        recs = restructure(g)
        assert recs.shape == (12,)
        assert np.array_equal(recs["cell"], np.arange(12))
        assert np.array_equal(recs["elev"], g.elev.ravel())
        # Interior cell 5 at (1,1): neighbours are 0,1,2,4,6,8,9,10.
        nbr = recs["nbr_elev"][5]
        assert sorted(nbr.tolist()) == [0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 9.0, 10.0]

    def test_border_cells_padded_with_inf(self):
        g = TerrainGrid(np.zeros((2, 2)))
        recs = restructure(g)
        assert np.isinf(recs["nbr_elev"][0]).sum() == 5  # corner: 5 outside

    def test_blocked_equals_full(self, rng):
        g = synthetic_dem(16, 8, rng)
        full = restructure(g)
        blocks = restructure_blocked(g, 4)
        joined = np.concatenate(blocks)
        assert np.array_equal(joined["cell"], full["cell"])
        assert np.array_equal(joined["nbr_elev"], full["nbr_elev"])

    def test_blocked_bad_count(self, rng):
        with pytest.raises(ValueError):
            restructure_blocked(synthetic_dem(4, 4, rng), 0)

    def test_cells_as_set(self, rng):
        g = synthetic_dem(8, 8, rng)
        s = cells_as_set(restructure(g), packet_records=16)
        assert len(s) == 64
        assert s.n_pending_packets == 4


class TestWatershed:
    def test_cone_is_single_watershed(self):
        g = cone_dem(15, 15)
        res = watershed_labels(g)
        assert res.n_watersheds == 1
        assert np.all(res.labels == 0)

    def test_two_pits_two_watersheds(self):
        # Two clear basins separated by a ridge down the middle column.
        z = np.array([
            [5.0, 6.0, 9.0, 6.0, 5.0],
            [4.0, 5.0, 9.0, 5.0, 4.0],
            [3.0, 4.0, 9.0, 4.0, 0.5],
            [2.0, 3.0, 9.0, 3.0, 2.0],
            [0.0, 2.0, 9.0, 2.0, 1.0],
        ])
        res = watershed_labels(TerrainGrid(z))
        grid_labels = res.labels.reshape(5, 5)
        # Left and right basins carry different labels.
        assert grid_labels[4, 0] != grid_labels[2, 4]
        # Left column cells drain left, right column cells drain right.
        assert grid_labels[0, 0] == grid_labels[4, 0]
        assert grid_labels[0, 4] == grid_labels[2, 4]

    def test_every_cell_labelled(self, rng):
        g = synthetic_dem(24, 24, rng)
        res = watershed_labels(g)
        assert np.all(res.labels >= 0)
        assert res.n_watersheds >= 1

    def test_matches_reference(self, rng):
        g = synthetic_dem(20, 20, rng, n_pits=5)
        tf = watershed_labels(g)
        ref = watershed_reference(g)
        assert np.array_equal(tf.labels, ref)

    def test_external_pq_spills_with_tiny_memory(self, rng):
        g = synthetic_dem(16, 16, rng)
        res = watershed_labels(g, memory_entries=8)
        assert res.pq_spilled_runs > 0
        assert np.array_equal(res.labels, watershed_reference(g))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        rows=st.integers(3, 12),
        cols=st.integers(3, 12),
    )
    def test_property_time_forward_equals_pointer_chasing(self, seed, rows, cols):
        g = synthetic_dem(rows, cols, RngRegistry(seed).get("dem"), n_pits=2)
        assert np.array_equal(watershed_labels(g).labels, watershed_reference(g))

    def test_plateau_cells_become_minima(self):
        # A flat grid: every cell is a local minimum (strictly-lower rule).
        g = TerrainGrid(np.zeros((3, 3)))
        res = watershed_labels(g)
        assert res.n_watersheds == 9


class TestFlow:
    def test_cone_accumulates_to_center(self):
        g = cone_dem(9, 9)
        res = flow_accumulation(g)
        acc = res.accumulation_grid(g)
        assert acc[4, 4] == 81  # everything drains to the pit

    def test_conservation(self, rng):
        g = synthetic_dem(16, 16, rng)
        res = flow_accumulation(g)
        down = d8_directions(g)
        sinks = down == -1
        # All mass ends in sinks: sum over sinks equals total cell count...
        # each cell contributes 1 unit that flows to exactly one sink.
        assert res.accumulation[sinks].sum() == g.n_cells

    def test_matches_reference(self, rng):
        g = synthetic_dem(20, 20, rng)
        assert np.array_equal(
            flow_accumulation(g).accumulation, flow_accumulation_reference(g)
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_property_flow_equals_reference(self, seed):
        g = synthetic_dem(10, 10, RngRegistry(seed).get("dem"))
        assert np.array_equal(
            flow_accumulation(g).accumulation, flow_accumulation_reference(g)
        )

    def test_minimum_accumulation_is_one(self, rng):
        g = synthetic_dem(12, 12, rng)
        assert flow_accumulation(g).accumulation.min() >= 1


class TestPipeline:
    def test_sortable_key_preserves_order(self):
        xs = np.array([-10.0, -0.5, 0.0, 0.25, 3.0, 1e9])
        keys = sortable_f64_key(xs)
        assert np.all(np.diff(keys.astype(np.float64)) > 0)

    def test_pipeline_end_to_end(self, rng):
        g = synthetic_dem(24, 24, rng, n_pits=4)
        out = terraflow_pipeline(g, memory_records=64, fan_in=4)
        assert np.array_equal(out.watershed.labels, watershed_reference(g))
        assert np.array_equal(out.elevation_order, g.elevation_order())
        assert out.sort_io_blocks > 0
        assert out.step_records["restructure"] == g.n_cells

    def test_pipeline_on_cone_with_massive_ties(self):
        g = cone_dem(12, 12)
        out = terraflow_pipeline(g, memory_records=16, fan_in=2)
        assert np.array_equal(out.elevation_order, g.elevation_order())


class TestDistributedElevationSort:
    def test_emulated_dsm_sort_recovers_elevation_order(self, rng):
        from repro.apps.terraflow import distributed_elevation_sort
        from repro.bench.fig9 import fig9_params

        g = synthetic_dem(32, 32, rng, n_pits=4)
        params = fig9_params(n_asus=4)
        job, order = distributed_elevation_sort(g, params, alpha=8, gamma=8)
        assert np.array_equal(order, g.elevation_order())
        assert sum(len(r) for r in job.runs_on_asu) > 0

    def test_handles_tied_elevations(self):
        from repro.apps.terraflow import distributed_elevation_sort
        from repro.bench.fig9 import fig9_params

        g = cone_dem(16, 16)  # heavy elevation ties by symmetry
        params = fig9_params(n_asus=4)
        _job, order = distributed_elevation_sort(g, params, alpha=4, gamma=4)
        assert np.array_equal(order, g.elevation_order())

    def test_asu_data_validation(self):
        from repro.core import DSMConfig
        from repro.dsmsort import DsmSortJob
        from repro.bench.fig9 import fig9_params

        params = fig9_params(n_asus=4)
        cfg = DSMConfig.for_n(1 << 10, alpha=4, gamma=4)
        with pytest.raises(ValueError, match="asu_data has"):
            DsmSortJob(params, cfg, asu_data=[np.empty(0, params.schema.dtype)])
        with pytest.raises(ValueError, match="does not match"):
            DsmSortJob(
                params, cfg,
                asu_data=[np.empty(0, dtype=np.float64) for _ in range(4)],
            )


class TestTerraflowEmulated:
    def test_end_to_end_emulated_run(self, rng):
        from repro.apps.terraflow import terraflow_emulated, watershed_reference
        from repro.bench.fig9 import fig9_params

        g = synthetic_dem(32, 32, rng, n_pits=3)
        params = fig9_params(n_asus=4)
        res = terraflow_emulated(g, params, alpha=8, gamma=8, seed=1)
        assert set(res.makespans) == {"restructure", "sort", "watershed"}
        assert all(t > 0 for t in res.makespans.values())
        assert res.total_makespan == pytest.approx(sum(res.makespans.values()))
        assert np.array_equal(res.elevation_order, g.elevation_order())
        assert np.array_equal(res.watershed.labels, watershed_reference(g))
