"""Tests for the emulated BTE (disk-time-charging stream store)."""

import numpy as np
import pytest

from repro.bte import EmulatedBTE
from repro.emulator import ActivePlatform, SystemParams
from repro.util.records import make_records


def batch_of(keys):
    return make_records(np.asarray(keys, dtype=np.uint32))


@pytest.fixture
def platform():
    return ActivePlatform(SystemParams(n_hosts=1, n_asus=2))


class TestEmulatedBTE:
    def test_append_charges_disk_time(self, platform):
        asu = platform.asus[0]
        bte = EmulatedBTE(asu)
        data = batch_of(range(1000))  # 128 KB

        def proc():
            h = bte.create("s")
            yield from bte.append_g(h, data)
            yield from bte.drain_g()
            return platform.sim.now

        p = platform.spawn(proc())
        platform.sim.run()
        expected = data.nbytes / platform.params.disk_rate
        assert p.value >= expected * 0.99

    def test_read_charges_disk_time_and_returns_data(self, platform):
        asu = platform.asus[0]
        bte = EmulatedBTE(asu)

        def proc():
            h = bte.create("s")
            bte.append(h, batch_of([1, 2, 3]))  # untimed setup path
            t0 = platform.sim.now
            got = yield from bte.read_next_g(h, 3)
            return got, platform.sim.now - t0

        p = platform.spawn(proc())
        platform.sim.run()
        got, dt = p.value
        assert list(got["key"]) == [1, 2, 3]
        assert dt > 0

    def test_read_at_g(self, platform):
        bte = EmulatedBTE(platform.asus[1])

        def proc():
            h = bte.create("s")
            bte.append(h, batch_of(range(10)))
            got = yield from bte.read_at_g(h, 4, 3)
            return list(got["key"])

        p = platform.spawn(proc())
        platform.sim.run()
        assert p.value == [4, 5, 6]

    def test_empty_operations_charge_nothing(self, platform):
        bte = EmulatedBTE(platform.asus[0])

        def proc():
            h = bte.create("s")
            yield from bte.append_g(h, batch_of([]))
            got = yield from bte.read_next_g(h, 5)
            return got.shape[0], platform.sim.now

        p = platform.spawn(proc())
        platform.sim.run()
        n, t = p.value
        assert n == 0 and t == 0.0

    def test_two_asus_have_independent_disks(self, platform):
        b0 = EmulatedBTE(platform.asus[0])
        b1 = EmulatedBTE(platform.asus[1])
        data = batch_of(range(2000))
        ends = []

        def proc(bte):
            h = bte.create("s")
            yield from bte.append_g(h, data)
            yield from bte.drain_g()
            ends.append(platform.sim.now)

        platform.spawn(proc(b0))
        platform.spawn(proc(b1))
        platform.sim.run()
        # Parallel disks: both finish at the same time, not serialized.
        assert ends[0] == pytest.approx(ends[1])

    def test_schema_comes_from_asu_params(self, platform):
        bte = EmulatedBTE(platform.asus[0])
        assert bte.schema == platform.params.schema
