"""Property tests for the ASURA-style replica placement (repro.replica).

The two properties the replication layer depends on:

- **uniformity**: every ASU receives an equal share of primaries within
  sampling noise (the tentpole bound: ±2% of the mean at fleet sizes of
  64+ ASUs, with enough shards that the binomial noise floor sits below
  the bound);
- **minimal movement**: growing the fleet N -> N+1 relocates ~1/(N+1) of
  shard assignments and never moves a shard between two surviving ASUs
  (every move lands on the new ASU).
"""

import numpy as np
import pytest

from repro.replica import SEGMENT, ReplicaPlacement
from repro.replica.placement import _splitmix64


class TestDraws:
    def test_scalar_vector_equivalence(self):
        p = ReplicaPlacement(7, capacity=64, seed=11)
        shards = np.arange(512, dtype=np.uint64)
        vec = p.primaries(shards)
        assert [p.primary(int(s)) for s in shards] == vec.tolist()

    def test_deterministic_and_seed_sensitive(self):
        a = ReplicaPlacement(16, seed=1)
        b = ReplicaPlacement(16, seed=1)
        c = ReplicaPlacement(16, seed=2)
        sets_a = [a.replicas(s, 3) for s in range(200)]
        assert sets_a == [b.replicas(s, 3) for s in range(200)]
        assert sets_a != [c.replicas(s, 3) for s in range(200)]

    def test_replicas_ordered_distinct(self):
        p = ReplicaPlacement(8)
        for s in range(100):
            reps = p.replicas(s, 3)
            assert len(reps) == 3
            assert len(set(reps)) == 3
            assert all(0 <= d < 8 for d in reps)
            # rank 0 is the primary; prefixes are consistent across r
            assert p.replicas(s, 1) == reps[:1]
            assert p.replicas(s, 2) == reps[:2]

    def test_r_clamped_to_fleet(self):
        p = ReplicaPlacement(3)
        assert len(p.replicas(0, 5)) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one ASU"):
            ReplicaPlacement(0)
        with pytest.raises(ValueError, match="capacity"):
            ReplicaPlacement(8, capacity=4)
        with pytest.raises(ValueError, match="r >= 1"):
            ReplicaPlacement(8).replicas(0, 0)

    def test_nearby_seeds_decorrelate(self):
        # Regression: the raw seed XORed onto the k-indexed draw input only
        # flips low bits, which merely permutes the draw sequence within
        # small blocks — seeds 0 and 9 then produce near-identical
        # placements.  The seed must be mixed to full width first.
        n_shards = 2000
        shards = np.arange(n_shards, dtype=np.uint64)
        a = ReplicaPlacement(6, seed=0).primaries(shards)
        b = ReplicaPlacement(6, seed=9).primaries(shards)
        agree = (a == b).mean()
        # independent uniform placements agree on ~1/6 of shards
        assert agree < 0.35, f"seeds 0 and 9 agree on {agree:.0%} of shards"

    def test_splitmix64_reference(self):
        # Known-answer test for the underlying mix (splitmix64 of 0 and 1).
        assert _splitmix64(0) == 0xE220A8397B1DCDAF
        assert _splitmix64(1) == 0x910A2DEC89025CC1


class TestUniformity:
    def test_primaries_uniform_at_64_asus(self):
        # 1.5M shards over 64 ASUs: mean 23437.5/ASU, binomial sigma
        # ~0.65% of the mean, so the ±2% tentpole bound is a 3-sigma test.
        n_asus, n_shards = 64, 1_500_000
        p = ReplicaPlacement(n_asus, capacity=128, seed=5)
        counts = np.bincount(
            p.primaries(np.arange(n_shards, dtype=np.uint64)), minlength=n_asus
        )
        mean = n_shards / n_asus
        dev = np.abs(counts - mean) / mean
        assert dev.max() < 0.02, f"max deviation {dev.max():.4f} >= 2%"

    def test_replica_ranks_uniform(self):
        # Every rank of the replica set inherits uniformity, not just rank 0
        # (looser bound: fewer samples per rank in the scalar path).
        n_asus, n_shards, r = 16, 60_000, 3
        p = ReplicaPlacement(n_asus, capacity=64, seed=9)
        per_rank = np.zeros((r, n_asus), dtype=np.int64)
        for s in range(n_shards):
            for rank, d in enumerate(p.replicas(s, r)):
                per_rank[rank, d] += 1
        mean = n_shards / n_asus
        dev = np.abs(per_rank - mean) / mean
        assert dev.max() < 0.05, f"max rank deviation {dev.max():.4f} >= 5%"


class TestMinimalMovement:
    @pytest.mark.parametrize("n", [4, 63, 64])
    def test_grow_moves_one_over_n(self, n):
        # N -> N+1: expected move fraction is exactly 1/(N+1); allow 3-sigma
        # binomial slack around it.
        n_shards = 200_000
        shards = np.arange(n_shards, dtype=np.uint64)
        before = ReplicaPlacement(n, capacity=128, seed=7).primaries(shards)
        after = ReplicaPlacement(n + 1, capacity=128, seed=7).primaries(shards)
        moved = before != after
        frac = moved.mean()
        expect = 1.0 / (n + 1)
        sigma = np.sqrt(expect * (1 - expect) / n_shards)
        assert abs(frac - expect) < 3 * sigma, (
            f"moved {frac:.4f}, expected {expect:.4f} ± {3 * sigma:.4f}"
        )
        # Every move lands on the *new* ASU: no reshuffling among survivors.
        assert (after[moved] == n).all()

    def test_shrink_reassigns_only_lost_segment(self):
        n, n_shards = 32, 100_000
        shards = np.arange(n_shards, dtype=np.uint64)
        before = ReplicaPlacement(n, capacity=128, seed=3).primaries(shards)
        after = ReplicaPlacement(n - 1, capacity=128, seed=3).primaries(shards)
        moved = before != after
        # Only shards whose primary was the removed ASU move.
        assert (before[moved] == n - 1).all()
        assert moved.sum() == (before == n - 1).sum()

    def test_segment_constant_pins_draw_space(self):
        # The fixed draw space IS the minimal-movement property; changing
        # SEGMENT silently would reshuffle every deployment's placement.
        assert SEGMENT == 1 << 16
