"""Tests for node wiring and the ActivePlatform."""

import pytest

from repro.emulator import ActivePlatform, SystemParams


@pytest.fixture
def platform():
    return ActivePlatform(SystemParams(n_hosts=2, n_asus=4))


class TestTopology:
    def test_node_population(self, platform):
        assert len(platform.hosts) == 2
        assert len(platform.asus) == 4
        assert len(platform.nodes) == 6

    def test_node_ids_unique(self, platform):
        ids = [n.node_id for n in platform.nodes]
        assert len(set(ids)) == len(ids)

    def test_node_lookup(self, platform):
        assert platform.node("host0") is platform.hosts[0]
        assert platform.node("asu3") is platform.asus[3]
        with pytest.raises(KeyError):
            platform.node("asu99")

    def test_host_faster_than_asu(self, platform):
        assert platform.hosts[0].cpu.clock_hz == pytest.approx(
            platform.asus[0].cpu.clock_hz * platform.params.asu_ratio
        )

    def test_asu_has_disk_host_does_not(self, platform):
        assert hasattr(platform.asus[0], "disk")
        assert not hasattr(platform.hosts[0], "disk")


class TestMessaging:
    def test_host_asu_roundtrip(self, platform):
        host, asu = platform.hosts[0], platform.asus[0]

        def host_proc():
            yield from host.send(asu, payload="request", nbytes=64, tag="req")
            reply = yield from host.recv()
            return reply.payload

        def asu_proc():
            msg = yield from asu.recv()
            assert msg.payload == "request"
            yield from asu.send(host, payload="reply", nbytes=64, tag="rep")

        p = platform.spawn(host_proc())
        platform.spawn(asu_proc())
        platform.sim.run()
        assert p.value == "reply"

    def test_send_charges_sender_cpu(self, platform):
        host, asu = platform.hosts[0], platform.asus[0]

        def host_proc():
            yield from host.send(asu, None, nbytes=1 << 20)

        platform.spawn(host_proc())
        platform.sim.run()
        expected = (1 << 20) * platform.params.cycles_per_net_byte
        assert host.cpu.cycles_charged == pytest.approx(expected)


class TestRunReport:
    def test_run_to_completion(self, platform):
        asu = platform.asus[0]

        def main(_plat):
            yield from asu.disk_read(platform.params.disk_rate)  # exactly 1s of I/O
            return "ok"

        report = platform.run_to_completion(lambda plat: main(plat))
        assert report.result == "ok"
        assert report.makespan == pytest.approx(1.0, rel=0.05)
        assert len(report.host_util) == 2
        assert len(report.asu_cpu_util) == 4
        assert report.asu_disk_util[0] > 0.9

    def test_deadlock_detected(self, platform):
        def main(_plat):
            # Wait on a message that never comes.
            msg = yield from platform.hosts[0].recv()
            return msg

        with pytest.raises(RuntimeError, match="never finished"):
            platform.run_to_completion(lambda plat: main(plat))

    def test_report_as_dict(self, platform):
        def main(_plat):
            yield platform.sim.timeout(1.0)

        report = platform.run_to_completion(lambda plat: main(plat))
        d = report.as_dict()
        assert d["makespan"] == pytest.approx(1.0)
        assert "host_util" in d and "net_bytes" in d

    def test_wait_for_unfinished_raises(self, platform):
        def stuck():
            yield platform.hosts[0].mailbox.get()

        p = platform.spawn(stuck())
        with pytest.raises(RuntimeError, match="never finished"):
            platform.run(wait_for=[p])

    def test_determinism_across_platforms(self):
        def build():
            plat = ActivePlatform(SystemParams(n_hosts=1, n_asus=2))

            def main(_p):
                a0, a1 = plat.asus
                r0 = plat.spawn(a0.disk_read(1 << 20))
                r1 = plat.spawn(a1.disk_read(1 << 20))
                yield plat.sim.all_of([r0, r1])
                return plat.sim.now

            return plat.run_to_completion(lambda p: main(p)).makespan

        assert build() == build()
