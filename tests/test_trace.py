"""Tests for repro.trace: tracer API, Chrome export, per-stage profile, and
the zero-perturbation guarantee of the traced emulator."""

import json

import pytest

from repro.core import ConfigSolver
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.emulator.platform import ActivePlatform
from repro.trace import ProfileReport, Tracer, chrome_dumps, to_chrome


def _params(n_asus=4, n_hosts=2):
    return SystemParams(
        n_hosts=n_hosts,
        n_asus=n_asus,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )


def _traced_sort(n=1 << 13, seed=3, tracer=None):
    params = _params()
    config = ConfigSolver(params).config_for_alpha(n, 8)
    job = DsmSortJob(params, config, policy="sr", seed=seed, tracer=tracer)
    r1 = job.run_pass1()
    r2 = job.run_pass2()
    job.verify()
    return job, r1, r2


class TestTracer:
    def test_span_instant_counter_recorded(self):
        tr = Tracer()
        tr.span(0.0, 1.5, "asu0.cpu", "cpu", cat="cpu")
        tr.instant(2.0, "faults", "inject", cat="fault")
        tr.counter(2.5, "mbox:host0", "depth", 3.0)
        assert tr.n_events() == 3
        assert tr.tracks() == ["asu0.cpu", "faults", "mbox:host0"]
        assert tr.t_max() == 2.5

    def test_count_accumulates(self):
        tr = Tracer()
        assert tr.count(0.0, "host0.sort", "records", 10.0) == 10.0
        assert tr.count(1.0, "host0.sort", "records", 5.0) == 15.0
        assert tr.counters[-1] == (1.0, "host0.sort", "records", 15.0)

    def test_offset_stitches_phases(self):
        tr = Tracer()
        tr.span(0.0, 1.0, "a", "x")
        tr.offset = 1.0  # phase 2 clock restarts at 0
        tr.span(0.0, 0.5, "a", "y")
        tr.instant(0.25, "a", "z")
        assert tr.spans[1][:2] == (1.0, 1.5)
        assert tr.instants[0][0] == 1.25
        assert tr.t_max() == 1.5

    def test_clear_resets_everything(self):
        tr = Tracer()
        tr.count(0.0, "a", "records", 1.0)
        tr.offset = 2.0
        tr.clear()
        assert tr.n_events() == 0
        assert tr.offset == 0.0
        assert tr.count(0.0, "a", "records", 1.0) == 1.0


class TestChromeExport:
    def test_format_shape(self):
        tr = Tracer()
        tr.span(0.0, 0.001, "asu0.disk", "xfer", cat="disk")
        tr.instant(0.002, "faults", "inject crash", cat="fault")
        tr.counter(0.003, "net", "bytes", 42.0)
        doc = to_chrome(tr)
        assert doc["displayTimeUnit"] == "ms"
        by_ph = {e["ph"]: e for e in doc["traceEvents"]}
        assert by_ph["M"]["name"] == "thread_name"
        assert by_ph["X"]["ts"] == 0.0 and by_ph["X"]["dur"] == 1000.0
        assert by_ph["i"]["s"] == "t"
        assert by_ph["C"]["args"] == {"bytes": 42.0}
        # tids assigned by sorted track name, starting at 1
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = [e["args"]["name"] for e in meta]
        assert names == sorted(names)
        assert [e["tid"] for e in meta] == [1, 2, 3]

    def test_dumps_is_valid_json_and_stable(self):
        tr = Tracer()
        tr.span(0.0, 0.5, "b", "x")
        tr.span(0.5, 0.75, "a", "y")
        s1 = chrome_dumps(tr)
        s2 = chrome_dumps(tr)
        assert s1 == s2
        json.loads(s1)


class TestProfileReport:
    def test_busy_records_rate_stall(self):
        tr = Tracer()
        tr.span(0.0, 2.0, "host0.cpu", "cpu", cat="cpu")
        tr.span(3.0, 4.0, "host0.cpu", "cpu", cat="cpu")
        tr.count(1.0, "host0.sort", "records", 100.0)
        tr.count(4.0, "host0.sort", "records", 100.0)
        rep = ProfileReport.from_tracer(tr, makespan=5.0)
        cpu = rep.row("host0.cpu")
        assert cpu.busy == pytest.approx(3.0)
        assert cpu.n_spans == 2
        assert cpu.stall == pytest.approx(2.0)
        sort = rep.row("host0.sort")
        assert sort.records == 200.0
        assert sort.rate == pytest.approx(40.0)
        json.loads(rep.to_json())
        assert "host0.cpu" in rep.render()

    def test_missing_row_raises(self):
        rep = ProfileReport.from_tracer(Tracer())
        with pytest.raises(KeyError):
            rep.row("nope")


class TestTracedRun:
    def test_traced_sort_covers_every_device(self):
        tracer = Tracer()
        job, r1, r2 = _traced_sort(tracer=tracer)
        tracks = set(tracer.tracks())
        params = job.params
        for d in range(params.n_asus):
            assert f"asu{d}.cpu" in tracks
            assert f"asu{d}.disk" in tracks
            assert f"asu{d}.distribute" in tracks
            assert f"asu{d}.write" in tracks
        for h in range(params.n_hosts):
            assert f"host{h}.cpu" in tracks
            assert f"host{h}.sort" in tracks
        assert any(t.startswith("link:") for t in tracks)
        assert "router" in tracks
        # pass-2 events sit after pass 1 on the stitched timeline
        assert tracer.t_max() == pytest.approx(r1.makespan + r2.makespan, rel=0.2)

    def test_trace_records_match_sorted_input(self):
        tracer = Tracer()
        job, _r1, _r2 = _traced_sort(tracer=tracer)
        rep = ProfileReport.from_tracer(tracer)
        n = sum(a.shape[0] for a in job.asu_data)
        distributed = sum(
            rep.row(f"asu{d}.distribute").records for d in range(job.params.n_asus)
        )
        sorted_ = sum(
            rep.row(f"host{h}.sort").records for h in range(job.params.n_hosts)
        )
        written = sum(
            rep.row(f"asu{d}.write").records for d in range(job.params.n_asus)
        )
        assert distributed == sorted_ == written == n

    def test_tracing_does_not_perturb_the_simulation(self):
        # The acceptance bar: a traced run and an untraced run of the same
        # job are the same simulation — identical makespans and event counts.
        _job0, a1, a2 = _traced_sort(seed=11, tracer=None)
        _job1, b1, b2 = _traced_sort(seed=11, tracer=Tracer())
        assert a1.makespan == b1.makespan
        assert a2.makespan == b2.makespan
        assert a1.net_bytes == b1.net_bytes
        assert a1.host_util == b1.host_util

    def test_platform_run_report_to_json(self):
        plat = ActivePlatform(_params())

        def main(p):
            yield from p.asus[0].disk_read(1 << 20)

        rep = plat.run_to_completion(main)
        payload = json.loads(rep.to_json())
        assert payload["makespan"] == rep.makespan
        assert rep.to_json() == rep.to_json()


class TestFlows:
    def test_flow_recorded_and_offset_applied(self):
        tr = Tracer()
        tr.flow(0.0, "a", 1.0, "b", "msg", cat="net")
        tr.offset = 10.0
        tr.flow(0.0, "b", 0.5, "c", "msg2", cat="queue")
        assert tr.flows[0] == (0.0, "a", 1.0, "b", "msg", "net")
        assert tr.flows[1] == (10.0, "b", 10.5, "c", "msg2", "queue")
        assert tr.n_events() == 2
        assert tr.t_max() == 10.5
        assert tr.tracks() == ["a", "b", "c"]
        tr.clear()
        assert tr.flows == []

    def test_chrome_flow_pairs(self):
        tr = Tracer()
        tr.span(0.0, 1.0, "a", "x")
        tr.span(2.0, 3.0, "b", "y")
        tr.flow(1.0, "a", 2.0, "b", "msg", cat="net")
        events = to_chrome(tr)["traceEvents"]
        start = [e for e in events if e["ph"] == "s"]
        finish = [e for e in events if e["ph"] == "f"]
        assert len(start) == len(finish) == 1
        assert start[0]["id"] == finish[0]["id"] == 1
        assert start[0]["name"] == finish[0]["name"] == "msg"
        assert start[0]["cat"] == "net"
        assert finish[0]["bp"] == "e"
        assert start[0]["ts"] == 1.0 * 1e6 and finish[0]["ts"] == 2.0 * 1e6

    def test_chrome_span_sid_parent_args(self):
        tr = Tracer()
        tr.span(0.0, 1.0, "a", "anon")
        tr.span(1.0, 2.0, "a", "child", sid="c1", parent="p0")
        events = [e for e in to_chrome(tr)["traceEvents"] if e["ph"] == "X"]
        anon = next(e for e in events if e["name"] == "anon")
        child = next(e for e in events if e["name"] == "child")
        assert "args" not in anon or "sid" not in anon.get("args", {})
        assert child["args"] == {"sid": "c1", "parent": "p0"}

    def test_offset_stitching_with_flows_byte_identical(self):
        # pass-1 + pass-2 recorded via offset stitching must serialise
        # identically to the same events recorded on one continuous clock
        stitched = Tracer()
        stitched.span(0.0, 1.0, "a", "p1", sid="s1")
        stitched.flow(1.0, "a", 1.0, "b", "hand-off", cat="queue")
        stitched.offset = 1.0
        stitched.span(0.0, 0.5, "b", "p2", sid="s2", parent="s1")
        stitched.flow(0.25, "b", 0.5, "a", "ack", cat="net")

        flat = Tracer()
        flat.span(0.0, 1.0, "a", "p1", sid="s1")
        flat.flow(1.0, "a", 1.0, "b", "hand-off", cat="queue")
        flat.span(1.0, 1.5, "b", "p2", sid="s2", parent="s1")
        flat.flow(1.25, "b", 1.5, "a", "ack", cat="net")

        assert chrome_dumps(stitched) == chrome_dumps(flat)

    def test_traced_sort_emits_flows(self):
        tracer = Tracer()
        _traced_sort(n=1 << 12, tracer=tracer)
        cats = {f[5] for f in tracer.flows}
        assert "queue" in cats  # disk issue/completion + mailbox edges
        # pass-1 -> pass-2 stitching leaves flows in both halves
        p1_end = tracer.spans[-1][0]
        assert any(f[0] < p1_end for f in tracer.flows)
        assert any(f[0] > 0 for f in tracer.flows)


class TestProfileRender:
    def test_render_sorted_busy_desc_with_stall_pct(self):
        tr = Tracer()
        tr.span(0.0, 1.0, "cold", "x", cat="cpu")
        tr.span(0.0, 3.0, "hot", "y", cat="disk")
        tr.span(3.0, 4.0, "warm", "z", cat="cpu")
        rep = ProfileReport.from_tracer(tr)
        text = rep.render()
        assert "stall%" in text
        lines = [ln for ln in text.splitlines()
                 if ln.lstrip().startswith(("hot", "warm", "cold"))]
        first_cols = [ln.split()[0] for ln in lines]
        assert first_cols == ["hot", "cold", "warm"]  # busy desc, ties by name
        # cold is idle 3 of 4 seconds -> 75.0% stall
        assert "75.0" in lines[1]
