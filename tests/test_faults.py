"""Tests for repro.faults: injection, detection, and DSM-Sort recovery."""

import numpy as np
import pytest

from repro.core import DSMConfig
from repro.core.load_manager import LoadManager
from repro.core.placement import Placement, PlacementSolver
from repro.core.routing import make_router
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.emulator.platform import ActivePlatform
from repro.faults import (
    FAULT_KINDS,
    FailureDetector,
    Fault,
    FaultPlan,
    FaultReport,
    Injector,
    RandomFaultModel,
    corrupt_msg,
    crash_asu,
    crash_host,
    degrade_asu,
    degrade_host,
    delay_msg,
    disk_fault,
    drop_msg,
    dup_msg,
    fault_kinds,
    link_flap,
    register_fault_kind,
)
from repro.functors.base import FunctorError


def small_params(**over):
    base = dict(n_hosts=2, n_asus=4)
    base.update(over)
    return SystemParams(**base)


def fig_params(**over):
    """Same calibrated cost family as the figure benches."""
    base = dict(
        n_hosts=2,
        n_asus=16,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )
    base.update(over)
    return SystemParams(**base)


# ---------------------------------------------------------------------------
# Fault / FaultPlan
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(t=0.0, kind="meteor", index=0)
        with pytest.raises(ValueError, match="nonnegative"):
            crash_asu(-1.0, 0)
        with pytest.raises(ValueError, match="positive duration"):
            degrade_asu(0.0, 0, factor=0.5, duration=0.0)
        with pytest.raises(ValueError, match="factor"):
            degrade_host(0.0, 0, factor=1.5, duration=1.0)
        with pytest.raises(ValueError, match="peer"):
            Fault(t=0.0, kind="link_flap", index=0, duration=1.0)

    def test_plan_sorts_chronologically(self):
        plan = FaultPlan([crash_asu(2.0, 1), crash_host(1.0, 0)])
        plan.add(degrade_asu(0.5, 2, factor=0.5, duration=1.0))
        assert [f.t for f in plan] == [0.5, 1.0, 2.0]
        assert len(plan) == 3

    def test_horizon_includes_durations(self):
        plan = FaultPlan([crash_asu(2.0, 0), degrade_asu(1.0, 1, 0.5, 5.0)])
        assert plan.horizon() == 6.0
        assert FaultPlan().horizon() == 0.0

    def test_validate_device_ranges(self):
        p = small_params()
        FaultPlan([crash_asu(0.0, 3), link_flap(0.0, 1, 3, 1.0)]).validate(p)
        with pytest.raises(ValueError, match="no such ASU"):
            FaultPlan([crash_asu(0.0, 4)]).validate(p)
        with pytest.raises(ValueError, match="no such host"):
            FaultPlan([crash_host(0.0, 2)]).validate(p)
        with pytest.raises(ValueError, match="no such ASU"):
            FaultPlan([link_flap(0.0, 0, 9, 1.0)]).validate(p)

    def test_scaled(self):
        plan = FaultPlan([degrade_asu(1.0, 0, 0.5, 2.0)]).scaled(0.5)
        f = plan.faults[0]
        assert (f.t, f.duration) == (0.5, 1.0)

    def test_window_cannot_end_before_it_starts(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            Fault(t=1.0, kind="crash_asu", index=0, duration=-0.5)

    def test_overlapping_crash_windows_same_target_rejected(self):
        with pytest.raises(ValueError, match="overlapping crash windows"):
            FaultPlan([crash_asu(1.0, 2), crash_asu(3.0, 2)])
        with pytest.raises(ValueError, match="overlapping crash windows"):
            FaultPlan([crash_host(0.5, 0)]).add(crash_host(0.5, 0))
        # distinct targets (or distinct kinds) never conflict
        FaultPlan([crash_asu(1.0, 2), crash_asu(3.0, 1), crash_host(1.0, 2)])

    def test_plan_rejects_non_fault_entries(self):
        with pytest.raises(TypeError, match="must be Fault instances"):
            FaultPlan([("crash_asu", 0.0, 1)])


class TestFaultKindRegistry:
    def test_unknown_kind_error_lists_registered(self):
        with pytest.raises(ValueError, match="registered kinds:.*crash_asu"):
            Fault(t=0.0, kind="meteor", index=0)

    def test_builtin_kinds_registered(self):
        assert {
            "crash_asu", "crash_host", "degrade_asu", "degrade_host",
            "link_flap", "drop_msg", "dup_msg", "delay_msg", "corrupt_msg",
            "disk_fault",
        } <= set(fault_kinds())

    def test_register_custom_kind(self):
        def needs_duration(f):
            if f.duration <= 0:
                raise ValueError("gamma rays need a positive duration")

        register_fault_kind(
            "test_gamma_ray",
            validate=needs_duration,
            describe=lambda f: f"t={f.t:.3f} gamma-ray asu{f.index}",
        )
        try:
            assert "test_gamma_ray" in fault_kinds()
            f = Fault(t=1.0, kind="test_gamma_ray", index=2, duration=0.5)
            assert f.describe() == "t=1.000 gamma-ray asu2"
            with pytest.raises(ValueError, match="positive duration"):
                Fault(t=1.0, kind="test_gamma_ray", index=2)
            # A custom kind is a first-class plan citizen.
            plan = FaultPlan([f]).validate(small_params())
            assert plan.kinds() == {"test_gamma_ray"}
        finally:
            del FAULT_KINDS["test_gamma_ray"]

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault_kind("crash_asu")

    def test_message_fault_constructors_validate(self):
        drop_msg(0.0, 0, 1, 0.5)
        dup_msg(0.0, 1, 3, 0.5)
        corrupt_msg(0.0, 0, 0, 0.5)
        disk_fault(0.0, 2, 0.5)
        with pytest.raises(ValueError, match="positive duration"):
            drop_msg(0.0, 0, 1, 0.0)
        with pytest.raises(ValueError, match="peer"):
            Fault(t=0.0, kind="dup_msg", index=0, duration=1.0)
        with pytest.raises(ValueError, match="positive extra delay"):
            delay_msg(0.0, 0, 1, 0.5, delay=0.0)
        with pytest.raises(ValueError, match="positive duration"):
            disk_fault(0.0, 2, -1.0)

    def test_message_fault_target_validation(self):
        p = small_params()  # 2 hosts, 4 ASUs
        FaultPlan([drop_msg(0.0, 1, 3, 0.5)]).validate(p)
        with pytest.raises(ValueError, match="no such host"):
            FaultPlan([drop_msg(0.0, 2, 0, 0.5)]).validate(p)
        with pytest.raises(ValueError, match="no such ASU"):
            FaultPlan([corrupt_msg(0.0, 0, 4, 0.5)]).validate(p)
        with pytest.raises(ValueError, match="no such ASU"):
            FaultPlan([disk_fault(0.0, 4, 0.5)]).validate(p)

    def test_plan_kinds(self):
        plan = FaultPlan([crash_asu(1.0, 0), drop_msg(0.5, 0, 1, 0.2)])
        assert plan.kinds() == {"crash_asu", "drop_msg"}
        assert FaultPlan().kinds() == set()


class TestRandomFaultModel:
    def test_same_seed_same_plan(self):
        p = small_params()
        kw = dict(mttf_asu=1.0, mttf_host=3.0, mtt_degrade=0.7, mtt_flap=0.5)
        a = RandomFaultModel(seed=11, **kw).plan(p, horizon=2.0)
        b = RandomFaultModel(seed=11, **kw).plan(p, horizon=2.0)
        assert [f.describe() for f in a] == [f.describe() for f in b]
        c = RandomFaultModel(seed=12, **kw).plan(p, horizon=2.0)
        assert [f.describe() for f in a] != [f.describe() for f in c]

    def test_max_crashes_cap(self):
        p = small_params()
        plan = RandomFaultModel(seed=0, mttf_asu=0.01, max_crashes=2).plan(
            p, horizon=10.0
        )
        assert sum(1 for f in plan if f.kind == "crash_asu") == 2

    def test_disabled_classes_yield_empty_plan(self):
        assert len(RandomFaultModel(seed=0).plan(small_params(), horizon=10.0)) == 0

    def test_message_and_disk_fault_draws(self):
        p = small_params()
        plan = RandomFaultModel(
            seed=5, mtt_drop=0.3, mtt_dup=0.3, mtt_delay=0.3, mtt_corrupt=0.3,
            mtt_disk_fault=0.3, msg_fault_duration=0.1, msg_delay=0.01,
            disk_fault_duration=0.1,
        ).plan(p, horizon=5.0)
        assert {
            "drop_msg", "dup_msg", "delay_msg", "corrupt_msg", "disk_fault"
        } <= plan.kinds()
        for f in plan:
            if f.kind == "delay_msg":
                assert f.extra == 0.01

    def test_new_draws_do_not_perturb_legacy_plans(self):
        # The message/disk classes draw *after* the legacy classes from the
        # same stream, so enabling them leaves the legacy faults unchanged.
        p = small_params()
        legacy = RandomFaultModel(seed=5, mttf_asu=1.0, max_crashes=2).plan(
            p, horizon=5.0
        )
        both = RandomFaultModel(
            seed=5, mttf_asu=1.0, max_crashes=2,
            mtt_drop=0.5, msg_fault_duration=0.1,
        ).plan(p, horizon=5.0)
        assert [f.describe() for f in legacy] == [
            f.describe() for f in both if f.kind == "crash_asu"
        ]
        assert any(f.kind == "drop_msg" for f in both)


# ---------------------------------------------------------------------------
# Injector on a bare platform
# ---------------------------------------------------------------------------
class TestInjector:
    def test_crash_interrupts_node_processes(self):
        plat = ActivePlatform(small_params())
        log = []

        def worker(d):
            while True:
                yield plat.sim.timeout(0.1)
                log.append((plat.sim.now, d))

        for d in range(2):
            plat.spawn(worker(d), node=plat.asus[d])
        inj = Injector(plat, FaultPlan([crash_asu(0.25, 0)]))
        inj.arm()
        plat.sim.run(until=1.0)
        assert not plat.asus[0].alive and plat.asus[1].alive
        assert inj.injected and not inj.skipped
        # asu0's worker stopped at the crash; asu1's kept going.
        assert max(t for t, d in log if d == 0) < 0.25
        assert max(t for t, d in log if d == 1) > 0.9

    def test_crash_dead_letters_traffic(self):
        plat = ActivePlatform(small_params())
        seen = []
        plat.network.dead_letter_hook = seen.append
        Injector(plat, FaultPlan([crash_asu(0.1, 0)])).arm()
        asu_id = plat.asus[0].node_id
        plat.sim.schedule_callback(
            lambda: plat.network.post("host0", asu_id, "late", 64), delay=0.5
        )
        plat.sim.run(until=2.0)
        assert plat.network.n_dropped == 1
        assert [m.payload for m in plat.network.dead_letters] == ["late"]
        assert seen == plat.network.dead_letters

    def test_degrade_scales_and_restores_clock(self):
        plat = ActivePlatform(small_params())
        cpu = plat.asus[1].cpu
        Injector(plat, FaultPlan([degrade_asu(0.2, 1, 0.25, 0.3)])).arm()
        speeds = {}
        plat.sim.schedule_callback(
            lambda: speeds.setdefault("during", cpu.speed_factor), delay=0.3
        )
        plat.sim.run(until=1.0)
        assert speeds["during"] == 0.25
        assert cpu.speed_factor == 1.0

    def test_fault_on_dead_node_is_skipped(self):
        plat = ActivePlatform(small_params())
        plan = FaultPlan([crash_asu(0.1, 0), degrade_asu(0.2, 0, 0.5, 1.0)])
        inj = Injector(plat, plan)
        inj.arm()
        plat.sim.run(until=1.0)
        assert [f.kind for f in inj.injected] == ["crash_asu"]
        assert [f.kind for f in inj.skipped] == ["degrade_asu"]

    def test_arm_twice_raises(self):
        plat = ActivePlatform(small_params())
        inj = Injector(plat, FaultPlan())
        inj.arm()
        with pytest.raises(RuntimeError, match="already armed"):
            inj.arm()

    def test_plan_validated_against_platform(self):
        plat = ActivePlatform(small_params())
        with pytest.raises(ValueError, match="no such ASU"):
            Injector(plat, FaultPlan([crash_asu(0.0, 99)]))

    def test_link_flap_defers_delivery_past_outage(self):
        plat = ActivePlatform(small_params())
        Injector(plat, FaultPlan([link_flap(0.0, 0, 0, duration=0.5)])).arm()
        arrivals = []

        def receiver():
            msg = yield plat.network.mailbox("asu0").get()
            arrivals.append((plat.sim.now, msg.payload))

        plat.spawn(receiver())
        plat.sim.schedule_callback(
            lambda: plat.network.post("host0", "asu0", "hi", 8), delay=0.1
        )
        plat.sim.run(until=2.0)
        # Delivery would normally land ~0.1 + latency; the flap holds it to 0.5.
        assert arrivals and arrivals[0][0] >= 0.5


# ---------------------------------------------------------------------------
# FailureDetector
# ---------------------------------------------------------------------------
class TestFailureDetector:
    def test_detects_crash_within_latency_bound(self):
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, interval=0.05, timeout=0.2)
        det.start()
        Injector(plat, FaultPlan([crash_asu(0.4, 2)])).arm()
        plat.sim.run(until=2.0)
        assert "asu2" in det.detected
        assert det.detected["asu2"] - 0.4 <= det.latency_bound
        assert len(det.detected) == 1  # no false positives

    def test_no_false_positives_without_faults(self):
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, interval=0.05, timeout=0.2)
        det.start()
        plat.sim.run(until=3.0)
        assert det.detected == {}

    def test_on_failure_callbacks_fire_once(self):
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, interval=0.05, timeout=0.1)
        calls = []
        det.on_failure.append(lambda node, t: calls.append((node.node_id, t)))
        det.start()
        Injector(plat, FaultPlan([crash_host(0.3, 1)])).arm()
        plat.sim.run(until=2.0)
        assert len(calls) == 1 and calls[0][0] == "host1"

    def test_parameter_validation(self):
        plat = ActivePlatform(small_params())
        with pytest.raises(ValueError, match="positive"):
            FailureDetector(plat, interval=0.0)
        with pytest.raises(ValueError, match=">= heartbeat"):
            FailureDetector(plat, interval=0.2, timeout=0.1)

    def test_start_twice_raises(self):
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat)
        det.start()
        with pytest.raises(RuntimeError, match="already started"):
            det.start()

    def test_heartbeat_exactly_at_deadline_is_not_failure(self):
        # Binary-exact cadence (0.0625 = 2**-4) so every beat and sweep
        # instant is a representable float and the arithmetic is exact.
        # The crash at t=0.26 leaves the last beat at t=0.25; the sweep at
        # t=0.5 observes silence of *exactly* `timeout` and must not declare
        # (the monitor uses strict >); the next sweep at 0.5625 does.
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, interval=0.0625, timeout=0.25)
        det.start()
        Injector(plat, FaultPlan([crash_asu(0.26, 1)])).arm()
        plat.sim.run(until=2.0)
        assert det.detected == {"asu1": 0.5625}

    def test_flap_back_within_detection_interval_not_declared(self):
        # A node that goes silent for *less* than the timeout and then comes
        # back must never be declared failed.  The beater stops at the crash
        # (last beat t=0.25); the node "flaps back" at t=0.40625 — silence of
        # 0.15625 < timeout — and keeps beating from then on (emulated by
        # restamping the liveness table, since fail-stops are permanent).
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, interval=0.0625, timeout=0.25)
        calls = []
        det.on_failure.append(lambda node, t: calls.append((node.node_id, t)))
        det.start()
        Injector(plat, FaultPlan([crash_asu(0.3, 0)])).arm()

        def resume():
            det._last_beat["asu0"] = plat.sim.now
            plat.sim.schedule_callback(resume, delay=det.interval)

        plat.sim.schedule_callback(resume, delay=0.40625)
        plat.sim.run(until=3.0)
        assert det.detected == {} and calls == []

    def test_flap_back_after_detection_does_not_double_fire(self):
        # Once declared, a node whose heartbeats reappear within a detection
        # interval must not fire recovery a second time: `detected` is the
        # dedup record, and declare_failed is idempotent.
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, interval=0.0625, timeout=0.25)
        calls = []
        det.on_failure.append(lambda node, t: calls.append((node.node_id, t)))
        det.start()
        Injector(plat, FaultPlan([crash_asu(0.3, 2)])).arm()

        def resume():
            det._last_beat["asu2"] = plat.sim.now
            if plat.sim.now < 1.5:
                plat.sim.schedule_callback(resume, delay=det.interval)

        # Beats resume one beat interval after the declaration at t=0.5625,
        # then stop again at t=1.5 — neither event may re-fire recovery.
        plat.sim.schedule_callback(resume, delay=0.625)
        plat.sim.run(until=4.0)
        det.declare_failed(plat.asus[2])  # explicit re-declare: idempotent
        assert calls == [("asu2", 0.5625)]
        assert det.detected == {"asu2": 0.5625}


# ---------------------------------------------------------------------------
# Router / LoadManager quarantine
# ---------------------------------------------------------------------------
class TestQuarantine:
    def test_pick_remaps_off_quarantined(self):
        r = make_router("static", 4, n_buckets=4)
        assert r.pick(1, 10) == 1
        r.quarantine(1)
        assert r.pick(1, 10) == 2  # cyclic next-alive

    def test_sr_draws_among_survivors(self):
        r = make_router("sr", 4, rng=np.random.default_rng(0))
        r.quarantine(2)
        picks = {r.pick(0, 1) for _ in range(200)}
        assert 2 not in picks and picks <= {0, 1, 3}

    def test_jsq_ignores_dead_instance(self):
        r = make_router("jsq", 3)
        r.on_sent(1, 5)
        r.on_sent(2, 5)
        r.quarantine(0)  # the emptiest queue is now dead
        assert r.pick(0, 1) in (1, 2)

    def test_weighted_masks_dead_instance(self):
        r = make_router("weighted", 0, weights=[1.0, 1.0, 8.0])
        r.quarantine(2)  # the heaviest instance dies
        assert all(r.pick(0, 1) in (0, 1) for _ in range(20))

    def test_adaptive_switch_propagates_quarantine(self):
        r = make_router("adaptive_switch", 4, n_buckets=4)
        r.quarantine(3)
        assert not r._static.alive[3] and not r._sr.alive[3]

    def test_cannot_quarantine_last_instance(self):
        r = make_router("static", 2, n_buckets=2)
        r.quarantine(0)
        with pytest.raises(RuntimeError, match="last alive"):
            r.quarantine(1)

    def test_load_manager_quarantine(self):
        lm = LoadManager(small_params(), n_instances=3, n_buckets=4, policy="static")
        lm.quarantine(1)
        assert lm.alive_instances() == [0, 2]
        assert lm.instances[1].quarantined
        for b in range(4):
            assert lm.route(b, 8) != 1
        assert lm.instances[1].records_routed == 0


# ---------------------------------------------------------------------------
# Placement repair
# ---------------------------------------------------------------------------
class TestPlacementRepair:
    def test_migrate_off_prefers_least_loaded_survivor(self):
        p = Placement()
        p.assign("scan", "asu", [0, 1])
        p.assign("filter", "asu", [2])
        moves = p.migrate_off("asu", 0, alive=[1, 2, 3])
        # asu3 hosts nothing, asu2 hosts one stage; asu3 wins.
        assert moves == [("scan", 0, 3)]
        assert p.of("scan").instances == [3, 1]

    def test_migrate_off_drops_duplicate_replica(self):
        p = Placement()
        p.assign("scan", "asu", [0, 1, 2])
        moves = p.migrate_off("asu", 0, alive=[1, 2])
        assert moves == [("scan", 0, -1)]
        assert p.of("scan").instances == [1, 2]

    def test_solver_repair_moves_and_revalidates(self):
        from repro.functors import (
            BlockSortFunctor,
            Dataflow,
            DistributeFunctor,
            MergeFunctor,
        )

        g = Dataflow()
        g.add_stage("distribute", DistributeFunctor.uniform(16), est_records=1000)
        g.add_stage("blocksort", BlockSortFunctor(1024), replicas=2, est_records=1000)
        g.add_stage("merge", MergeFunctor(8), est_records=1000)
        g.connect(Dataflow.SOURCE, "distribute", kind="set", est_records=1000)
        g.connect("distribute", "blocksort", kind="set", est_records=1000)
        g.connect("blocksort", "merge", kind="set", est_records=1000)
        g.connect("merge", Dataflow.SINK, kind="stream", est_records=1000)
        params = small_params()
        p = Placement()
        p.assign("distribute", "asu", [0])
        p.assign("blocksort", "host", [0, 1])
        p.assign("merge", "host", [1])
        solver = PlacementSolver(params)
        solver.validate(g, p)
        moves = solver.repair(g, p, "asu", 0)
        assert moves == [("distribute", 0, 1)]
        solver.validate(g, p)  # repaired placement is still legal

    def test_no_survivors_raises(self):
        p = Placement()
        p.assign("scan", "asu", [0])
        with pytest.raises(FunctorError, match="no surviving"):
            p.migrate_off("asu", 0, alive=[0])


# ---------------------------------------------------------------------------
# Fault-tolerant DSM-Sort (the acceptance scenarios)
# ---------------------------------------------------------------------------
N = 1 << 15


def make_ft_job(faults, **over):
    params = over.pop("params", fig_params())
    cfg = DSMConfig.for_n(N, alpha=16, gamma=16)
    defaults = dict(policy="sr", active=True, seed=3, faults=faults)
    defaults.update(over)
    return DsmSortJob(params, cfg, **defaults)


@pytest.fixture(scope="module")
def ft_baseline():
    """Fault-free makespan of the FT code path at D=16 (shared across tests)."""
    job = make_ft_job(FaultPlan())
    return job.run_pass1().makespan


# Heartbeat cadence for the toy workloads: the makespan is ~0.1 virtual
# seconds, so detection must resolve well inside that.
HB = dict(heartbeat_interval=0.002, heartbeat_timeout=0.008)


class TestFaultTolerantSort:
    def test_ft_requires_active_storage(self):
        with pytest.raises(ValueError, match="active storage"):
            make_ft_job(FaultPlan(), active=False)

    def test_fault_free_ft_matches_plain_path(self, ft_baseline):
        plain = make_ft_job(None)
        assert plain.run_pass1().makespan == ft_baseline

    def test_asu_crash_mid_run_recovers(self, ft_baseline):
        """The headline scenario: one ASU dies mid-run-formation at D=16."""
        plan = FaultPlan([crash_asu(0.5 * ft_baseline, 5)])
        job = make_ft_job(plan, **HB)
        res = job.run_pass1()
        rep = res.fault_report
        # Detected within the heartbeat latency bound.
        assert "asu5" in rep.detected
        lat = rep.detected["asu5"] - plan.faults[0].t
        assert lat <= HB["heartbeat_timeout"] + HB["heartbeat_interval"]
        # The survivors took over the dead shard and re-homed its runs.
        assert res.n_takeover_blocks > 0
        assert res.n_reemitted_runs > 0
        assert rep.recovered_at
        # Makespan degradation is bounded.
        assert res.makespan < 2.0 * ft_baseline
        # And the sort is still correct, end to end.
        job.run_pass2()
        job.verify()

    def test_host_crash_mid_run_recovers(self, ft_baseline):
        plan = FaultPlan([crash_host(0.5 * ft_baseline, 0)])
        job = make_ft_job(plan, **HB)
        res = job.run_pass1()
        assert "host0" in res.fault_report.detected
        # Lost fragments were replayed from producer retention buffers.
        assert res.n_replayed_frags > 0
        assert res.makespan < 2.0 * ft_baseline
        job.run_pass2()
        job.verify()

    def test_degraded_asu_slows_but_stays_correct(self, ft_baseline):
        plan = FaultPlan(
            [degrade_asu(0.2 * ft_baseline, 2, factor=0.3, duration=0.5 * ft_baseline)]
        )
        job = make_ft_job(plan)
        res = job.run_pass1()
        assert res.makespan > ft_baseline  # degradation costs something
        job.run_pass2()
        job.verify()

    def test_link_flap_delays_but_loses_nothing(self, ft_baseline):
        plan = FaultPlan(
            [link_flap(0.3 * ft_baseline, host=0, asu=1, duration=0.2 * ft_baseline)]
        )
        job = make_ft_job(plan)
        res = job.run_pass1()
        assert res.makespan >= ft_baseline
        job.run_pass2()
        job.verify()

    def test_faulted_run_is_deterministic(self, ft_baseline):
        def one():
            plan = FaultPlan([crash_asu(0.4 * ft_baseline, 5)])
            job = make_ft_job(plan, **HB)
            res = job.run_pass1()
            return res.makespan, job.platform.sim.n_events_processed, res.n_reemitted_runs

        assert one() == one()

    def test_fault_report_renders(self, ft_baseline):
        plan = FaultPlan([crash_asu(0.5 * ft_baseline, 1)])
        job = make_ft_job(plan, **HB)
        rep = job.run_pass1().fault_report
        assert isinstance(rep, FaultReport)
        text = rep.render()
        assert "1 injected" in text and "asu1" in text
        assert rep.mean_detection_latency() is not None
        assert rep.mean_mttr() is not None
