"""Tests for the shared-backplane interconnect option (§2 bandwidth limits)."""

import pytest

from repro.apps.filterscan import FilterScanJob
from repro.bench.fig9 import fig9_params
from repro.emulator import ActivePlatform, SystemParams
from repro.util.units import MB


class TestBackplaneModel:
    def test_backplane_serialises_independent_links(self):
        # Two senders on different links, but a backplane of one link's
        # capacity: arrivals serialise instead of overlapping.
        def arrivals(backplane):
            params = SystemParams(
                n_hosts=1, n_asus=2, net_latency=0.0,
                backplane_bandwidth=backplane,
            )
            plat = ActivePlatform(params)
            host = plat.hosts[0]
            out = []

            def sender(d):
                plat.network.post(
                    plat.asus[d].node_id, host.node_id, None, 1 << 20
                )
                yield plat.sim.timeout(0)

            def receiver():
                for _ in range(2):
                    yield host.mailbox.get()
                    out.append(plat.sim.now)

            plat.spawn(sender(0))
            plat.spawn(sender(1))
            plat.spawn(receiver())
            plat.sim.run()
            return out

        t_free = arrivals(None)
        t_capped = arrivals(SystemParams().net_bandwidth)  # backplane = 1 link
        assert t_free[0] == pytest.approx(t_free[1])       # parallel links
        assert t_capped[1] >= 2 * t_capped[0] * 0.99       # serialised

    def test_backplane_validation(self):
        with pytest.raises(ValueError):
            SystemParams(backplane_bandwidth=0)

    def test_no_backplane_is_default(self):
        assert SystemParams().backplane_bandwidth is None


class TestBandwidthLimitedFiltering:
    def test_active_filter_escapes_backplane_bottleneck(self):
        """§2: ASU-side filtering relieves interconnect bandwidth limits.

        With a tight shared backplane, the passive scan is wire-bound; the
        active filter ships 10% of the bytes and sails through.
        """
        params = fig9_params(n_asus=8).with_(backplane_bandwidth=20 * MB)
        threshold = int((2**32 - 1) * 0.10)
        job = FilterScanJob(
            params, n_records=1 << 15,
            predicate=lambda b: b["key"] < threshold, seed=6,
        )
        s_active, out_a = job.run(active=True)
        s_passive, out_p = job.run(active=False)
        job.verify(out_a)
        job.verify(out_p)
        # The passive run is crushed by the backplane; active wins big.
        assert s_active.makespan < 0.5 * s_passive.makespan
