"""Tests for the pass-2 predictor and the gamma-split chooser."""

import pytest

from repro.bench.fig9 import fig9_params
from repro.core import ConfigSolver, DSMConfig, predict_pass2
from repro.dsmsort import DsmSortJob


class TestPredictPass2:
    def test_gamma1_shifts_work_to_asus(self):
        params = fig9_params(n_asus=16)
        host_only = predict_pass2(params, gamma1=1, gamma2=64)
        split = predict_pass2(params, gamma1=4, gamma2=16)
        assert split.host_cpu_rate > host_only.host_cpu_rate
        assert split.asu_cpu_rate < host_only.asu_cpu_rate

    def test_host_bottleneck_on_many_asu_platform(self):
        params = fig9_params(n_asus=16)
        pred = predict_pass2(params, gamma1=1, gamma2=64)
        assert pred.bottleneck == "host_cpu"

    def test_asu_rate_scales_with_d(self):
        r8 = predict_pass2(fig9_params(n_asus=8), 2, 32).asu_cpu_rate
        r16 = predict_pass2(fig9_params(n_asus=16), 2, 32).asu_cpu_rate
        assert r16 == pytest.approx(2 * r8)

    def test_heterogeneous_hosts_lower_host_rate(self):
        full = fig9_params(n_asus=8, n_hosts=2)
        half = full.with_(host_clock_multipliers=(1.0, 0.5))
        assert (
            predict_pass2(half, 1, 16).host_cpu_rate
            < predict_pass2(full, 1, 16).host_cpu_rate
        )


class TestGammaSplitChooser:
    def test_prefers_offload_when_host_bound(self):
        # 16 ASUs, 1 host: pass 2 is host-bound, so gamma1 > 1 should win.
        solver = ConfigSolver(fig9_params(n_asus=16), gamma=64)
        g1, g2 = solver.choose_gamma_split()
        assert g1 > 1
        assert g1 * g2 == 64

    def test_prefers_host_when_asus_weak(self):
        # 2 weak ASUs: keep the merge at the host.
        solver = ConfigSolver(fig9_params(n_asus=2), gamma=64)
        g1, _g2 = solver.choose_gamma_split()
        assert g1 == 1

    def test_split_divides_gamma(self):
        for d in (2, 8, 32):
            solver = ConfigSolver(fig9_params(n_asus=d), gamma=16)
            g1, g2 = solver.choose_gamma_split()
            assert g1 * g2 == 16

    def test_chosen_split_beats_host_only_in_emulation(self):
        n = 1 << 15
        params = fig9_params(n_asus=16)
        solver = ConfigSolver(params, gamma=64)
        g1, _g2 = solver.choose_gamma_split()

        def run(gamma1):
            cfg = DSMConfig(
                n_records=n, alpha=8, beta=max(1, n // (8 * 64)),
                gamma=64, gamma1=gamma1,
            )
            job = DsmSortJob(params, cfg, seed=1)
            job.run_pass1()
            return job.run_pass2().makespan

        assert run(g1) <= run(1) * 1.02
