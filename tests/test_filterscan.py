"""Tests for ASU-side filtering (the §2 bandwidth-reduction workload)."""

import numpy as np

from repro.apps.filterscan import FilterScanJob
from repro.bench.fig9 import fig9_params


def make_job(selectivity_pct=10, n=1 << 15, d=8, seed=5):
    threshold = int((2**32 - 1) * selectivity_pct / 100)
    return FilterScanJob(
        fig9_params(n_asus=d),
        n_records=n,
        predicate=lambda b, t=threshold: b["key"] < t,
        seed=seed,
    )


class TestFilterScan:
    def test_active_output_matches_direct_evaluation(self):
        job = make_job()
        _stats, out = job.run(active=True)
        job.verify(out)

    def test_passive_output_matches_direct_evaluation(self):
        job = make_job()
        _stats, out = job.run(active=False)
        job.verify(out)

    def test_active_reduces_interconnect_traffic(self):
        job = make_job(selectivity_pct=10)
        s_active, _ = job.run(active=True)
        s_passive, _ = job.run(active=False)
        # ~10% selectivity: active ships ~10% of the bytes.
        assert s_active.net_bytes < 0.15 * s_passive.net_bytes

    def test_traffic_scales_with_selectivity(self):
        lo = make_job(selectivity_pct=5)
        hi = make_job(selectivity_pct=50)
        s_lo, _ = lo.run(active=True)
        s_hi, _ = hi.run(active=True)
        assert s_lo.net_bytes < s_hi.net_bytes

    def test_active_offloads_host(self):
        job = make_job()
        s_active, _ = job.run(active=True)
        s_passive, _ = job.run(active=False)
        assert s_active.host_util < s_passive.host_util

    def test_active_faster_when_host_bound(self):
        # Many ASUs + selective filter: passive saturates the host with
        # per-record predicate work; active leaves almost nothing to do.
        job = make_job(selectivity_pct=5, d=32, n=1 << 16)
        s_active, _ = job.run(active=True)
        s_passive, _ = job.run(active=False)
        assert s_active.makespan < s_passive.makespan

    def test_deterministic(self):
        a, _ = make_job().run(active=True)
        b, _ = make_job().run(active=True)
        assert a.makespan == b.makespan
        assert a.net_bytes == b.net_bytes

    def test_empty_selection(self):
        job = FilterScanJob(
            fig9_params(n_asus=4),
            n_records=1 << 12,
            predicate=lambda b: np.zeros(b.shape[0], dtype=bool),
        )
        stats, out = job.run(active=True)
        assert out.shape[0] == 0
        assert stats.n_selected == 0
        job.verify(out)
