"""Cross-cutting invariants of the emulated system.

These hold for *any* configuration: utilizations bounded by 1, makespans at
least the analytic lower bounds, byte conservation on the interconnect, and
failure propagation (a crashing functor surfaces instead of hanging).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.fig9 import fig9_params
from repro.core import DSMConfig, RecordCosts, predict_pass1
from repro.dsmsort import DsmSortJob
from repro.emulator import ActivePlatform, SystemParams


@settings(max_examples=10, deadline=None)
@given(
    d=st.sampled_from([2, 4, 16]),
    h=st.sampled_from([1, 2]),
    log_alpha=st.integers(0, 8),
    seed=st.integers(0, 100),
)
def test_property_pass1_invariants(d, h, log_alpha, seed):
    """For random platforms/configs: bounded utilizations, sane makespan."""
    n = 1 << 13
    params = fig9_params(n_asus=d, n_hosts=h)
    cfg = DSMConfig.for_n(n, alpha=1 << log_alpha, gamma=16)
    job = DsmSortJob(params, cfg, policy="sr", seed=seed)
    res = job.run_pass1()

    # Utilizations are proper fractions.
    for u in [*res.host_util, *res.asu_cpu_util, *res.asu_disk_util]:
        assert 0.0 <= u <= 1.0 + 1e-9

    # Makespan can't beat the analytic bottleneck bound (steady-state rate
    # is an upper bound on throughput).
    pred = predict_pass1(params, cfg.alpha, cfg.beta)
    assert res.makespan >= 0.99 * pred.time_for(n)

    # Run count: all records are in some run, none duplicated.
    total = sum(
        run.shape[0] for runs in job.runs_on_asu for _b, run in runs
    )
    assert total == (n // d) * d

    # Interconnect byte conservation: records to hosts + runs back + eofs.
    assert res.net_bytes >= total * params.schema.record_size


def test_makespan_monotone_in_data_size():
    params = fig9_params(n_asus=4)
    times = []
    for log_n in (12, 13, 14):
        n = 1 << log_n
        cfg = DSMConfig.for_n(n, alpha=16, gamma=16)
        times.append(DsmSortJob(params, cfg, seed=1).run_pass1().makespan)
    assert times[0] < times[1] < times[2]


def test_more_asus_never_slower_for_fixed_config():
    n = 1 << 14
    cfg = DSMConfig.for_n(n, alpha=16, gamma=16)
    t_prev = float("inf")
    for d in (2, 4, 8):
        t = DsmSortJob(fig9_params(n_asus=d), cfg, seed=1).run_pass1().makespan
        assert t <= t_prev * 1.01
        t_prev = t


def test_crashing_functor_surfaces_not_hangs():
    """Failure injection: an exception inside emulated code must propagate."""
    params = fig9_params(n_asus=2)
    cfg = DSMConfig.for_n(1 << 12, alpha=4, gamma=4)
    job = DsmSortJob(params, cfg, seed=1)

    calls = {"n": 0}
    original = job.dist.apply

    def sabotaged(batch):
        calls["n"] += 1
        if calls["n"] == 3:
            raise RuntimeError("injected functor crash")
        return original(batch)

    job.dist.apply = sabotaged
    with pytest.raises(RuntimeError, match="injected functor crash"):
        job.run_pass1()


def test_zero_byte_messages_cost_only_latency():
    plat = ActivePlatform(SystemParams(n_hosts=1, n_asus=1))
    host, asu = plat.hosts[0], plat.asus[0]

    def sender():
        yield from plat.network.send(asu.node_id, host.node_id, "ping", 0)

    def receiver():
        msg = yield plat.network.mailbox(host.node_id).get()
        return plat.sim.now

    plat.spawn(sender())
    p = plat.spawn(receiver())
    plat.sim.run()
    assert p.value == pytest.approx(plat.params.net_latency)


def test_record_costs_consistent_with_config_identity():
    """log(alpha) + log(beta) + log(gamma) compares == log(n) for any split."""
    costs = RecordCosts(fig9_params(n_asus=4))
    n = 1 << 20
    for alpha in (1, 16, 256):
        cfg = DSMConfig.for_n(n, alpha=alpha, gamma=64)
        cmp_cycles = fig9_params(4).cycles_per_compare
        touch = fig9_params(4).cycles_per_record
        total = (
            costs.distribute_cycles(cfg.alpha)
            + costs.blocksort_cycles(cfg.beta)
            + costs.merge_cycles(cfg.gamma)
            - 3 * touch
        ) / cmp_cycles
        assert total == pytest.approx(np.log2(n), abs=0.1)


def test_emulation_matches_prediction_within_tolerance_when_steady():
    """With many blocks per ASU, emulated rate approaches the prediction."""
    n = 1 << 17
    params = fig9_params(n_asus=4)
    cfg = DSMConfig.for_n(n, alpha=16, gamma=64)
    res = DsmSortJob(params, cfg, seed=1).run_pass1()
    pred = predict_pass1(params, cfg.alpha, cfg.beta)
    ratio = res.makespan / pred.time_for(n)
    assert 1.0 <= ratio < 1.25  # within fill/drain overhead
