"""Tests for the R-tree and its distributed organisations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.rtree import (
    DistributedRTree,
    RTree,
    clustered_points,
    intersects,
    make_rects,
    random_points,
    union_mbr,
    window_queries,
)
from repro.emulator.params import SystemParams
from repro.util.rng import RngRegistry


@pytest.fixture
def rng():
    return RngRegistry(31).get("spatial")


def small_params(n_asus=8):
    return SystemParams(n_hosts=1, n_asus=n_asus)


class TestGeometry:
    def test_intersects_basic(self):
        rects = make_rects([0, 10], [0, 10], [5, 15], [5, 15])
        q = np.array([4.0, 4.0, 6.0, 6.0])
        assert intersects(rects, q).tolist() == [True, False]

    def test_touching_borders_intersect(self):
        rects = make_rects([0], [0], [5], [5])
        assert intersects(rects, np.array([5.0, 5.0, 6.0, 6.0]))[0]

    def test_union_mbr(self):
        rects = make_rects([0, 10], [1, -5], [5, 15], [5, 2])
        assert union_mbr(rects).tolist() == [0, -5, 15, 5]

    def test_union_empty_rejected(self):
        with pytest.raises(ValueError):
            union_mbr(np.empty((0, 4)))


class TestRTree:
    def test_query_matches_brute_force(self, rng):
        pts = random_points(rng, 2000)
        tree = RTree(pts, page=32)
        for w in window_queries(rng, 20):
            got, _v = tree.query(w)
            assert np.array_equal(got, tree.query_brute(w))

    def test_clustered_data(self, rng):
        pts = clustered_points(rng, 1500)
        tree = RTree(pts, page=16)
        for w in window_queries(rng, 10, window=100.0):
            got, _v = tree.query(w)
            assert np.array_equal(got, tree.query_brute(w))

    def test_visit_count_sublinear(self, rng):
        pts = random_points(rng, 4096)
        tree = RTree(pts, page=64)
        _ids, visits = tree.query(np.array([0.0, 0.0, 50.0, 50.0]))
        assert visits < 4096 / 64  # far fewer pages than a full scan

    def test_height_grows_with_size(self, rng):
        small = RTree(random_points(rng, 50), page=16)
        large = RTree(random_points(rng, 5000), page=16)
        assert large.height > small.height

    def test_empty_tree(self):
        tree = RTree(np.empty((0, 4)), page=8)
        ids, visits = tree.query(np.array([0.0, 0.0, 1.0, 1.0]))
        assert ids.shape == (0,)
        assert visits == 0

    def test_single_item(self):
        tree = RTree(make_rects([1], [1], [2], [2]), page=8)
        ids, _ = tree.query(np.array([0.0, 0.0, 5.0, 5.0]))
        assert ids.tolist() == [0]
        ids, _ = tree.query(np.array([3.0, 3.0, 5.0, 5.0]))
        assert ids.shape == (0,)

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            RTree(np.empty((0, 4)), page=1)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(0, 300),
        page=st.sampled_from([2, 8, 64]),
    )
    def test_property_query_equals_brute(self, seed, n, page):
        rng = RngRegistry(seed).get("w")
        pts = random_points(rng, n)
        tree = RTree(pts, page=page)
        w = window_queries(rng, 1)[0]
        got, _ = tree.query(w)
        assert np.array_equal(got, tree.query_brute(w))


class TestDistributedRTree:
    @pytest.mark.parametrize("org", ["partition", "stripe"])
    def test_distributed_query_correct(self, rng, org):
        pts = random_points(rng, 2000)
        dt = DistributedRTree(pts, small_params(), organisation=org, page=32)
        base = RTree(pts, page=32)
        for w in window_queries(rng, 15):
            assert np.array_equal(dt.query_local(w), base.query_brute(w))

    def test_partition_contacts_few_asus(self, rng):
        pts = random_points(rng, 4000)
        dt = DistributedRTree(pts, small_params(), organisation="partition", page=32)
        fanouts = [len(dt.asus_for(w)) for w in window_queries(rng, 30)]
        assert np.mean(fanouts) < 8  # most queries touch a subset

    def test_stripe_contacts_all_asus(self, rng):
        pts = random_points(rng, 1000)
        dt = DistributedRTree(pts, small_params(), organisation="stripe", page=32)
        for w in window_queries(rng, 5):
            assert len(dt.asus_for(w)) == 8

    def test_bad_organisation(self, rng):
        with pytest.raises(ValueError):
            DistributedRTree(random_points(rng, 10), small_params(), organisation="mesh")

    def test_emulated_single_query_latency_stripe_lower(self, rng):
        # Figure-5 claim: striping bounds search latency (parallel scan).
        pts = random_points(rng, 8000)
        w = window_queries(rng, 1, window=300.0)
        part = DistributedRTree(pts, small_params(), "partition", page=16)
        stripe = DistributedRTree(pts, small_params(), "stripe", page=16)
        s_part = part.run_queries(w)
        s_stripe = stripe.run_queries(w)
        assert s_stripe.max_latency < s_part.max_latency

    def test_emulated_concurrent_throughput_partition_higher(self, rng):
        # Figure-5 claim: partitioning distributes many concurrent searches.
        pts = random_points(rng, 8000)
        ws = window_queries(rng, 64, window=30.0)
        part = DistributedRTree(pts, small_params(), "partition", page=16)
        stripe = DistributedRTree(pts, small_params(), "stripe", page=16)
        s_part = part.run_queries(ws)
        s_stripe = stripe.run_queries(ws)
        assert s_part.throughput > s_stripe.throughput

    def test_emulated_stats_shape(self, rng):
        pts = random_points(rng, 500)
        ws = window_queries(rng, 4)
        dt = DistributedRTree(pts, small_params(4), "partition", page=16)
        stats = dt.run_queries(ws)
        assert stats.n_queries == 4
        assert stats.makespan > 0
        assert stats.mean_latency <= stats.max_latency
        assert stats.mean_fanout >= 1


class TestHybridOrganisation:
    def test_hybrid_query_correct(self, rng):
        pts = random_points(rng, 2000)
        dt = DistributedRTree(
            pts, small_params(8), organisation="hybrid", page=32, replication=2
        )
        base = RTree(pts, page=32)
        for w in window_queries(rng, 15):
            assert np.array_equal(dt.query_local(w), base.query_brute(w))

    def test_each_group_replicated(self, rng):
        pts = random_points(rng, 1000)
        dt = DistributedRTree(
            pts, small_params(8), organisation="hybrid", page=32, replication=2
        )
        # 8 ASUs / replication 2 -> 4 groups; ASUs d and d+4 hold the same ids.
        for d in range(4):
            assert np.array_equal(dt.asu_ids[d], dt.asu_ids[d + 4])

    def test_replicas_rotate(self, rng):
        pts = random_points(rng, 1000)
        dt = DistributedRTree(
            pts, small_params(8), organisation="hybrid", page=32, replication=2
        )
        w = window_queries(rng, 1, window=100.0)[0]
        picks = {tuple(dt.asus_for(w)) for _ in range(6)}
        assert len(picks) > 1  # different replica choices across calls

    def test_hybrid_emulated_run(self, rng):
        pts = random_points(rng, 2000)
        dt = DistributedRTree(
            pts, small_params(8), organisation="hybrid", page=16, replication=2
        )
        stats = dt.run_queries(window_queries(rng, 16, window=40.0))
        assert stats.n_queries == 16
        assert stats.makespan > 0

    def test_hybrid_throughput_beats_stripe_on_hot_region(self, rng):
        # Concurrent queries hammering one hot region: replication lets the
        # hybrid spread them over k replicas, while partition serialises on
        # the single owner.
        pts = random_points(rng, 8000)
        hot = np.tile(window_queries(rng, 1, window=60.0)[0], (32, 1))
        part = DistributedRTree(pts, small_params(8), "partition", page=16)
        hyb = DistributedRTree(
            pts, small_params(8), "hybrid", page=16, replication=4
        )
        s_part = part.run_queries(hot)
        s_hyb = hyb.run_queries(hot)
        assert s_hyb.throughput > s_part.throughput

    def test_bad_replication(self, rng):
        with pytest.raises(ValueError):
            DistributedRTree(
                random_points(rng, 100), small_params(4), "hybrid", replication=9
            )


class TestAsuraPlacement:
    def test_bad_placement_name(self, rng):
        with pytest.raises(ValueError, match="placement"):
            DistributedRTree(
                random_points(rng, 100), small_params(4), "hybrid",
                placement="hash",
            )

    def test_asura_query_correct(self, rng):
        # Under ASURA an ASU may hold several groups; the group-scoped
        # search must still return the exact brute-force result set.
        pts = random_points(rng, 2000)
        dt = DistributedRTree(
            pts, small_params(8), organisation="hybrid", page=32,
            replication=2, placement="asura",
        )
        base = RTree(pts, page=32)
        for w in window_queries(rng, 15):
            assert np.array_equal(dt.query_local(w), base.query_brute(w))

    def test_asura_emulated_run(self, rng):
        pts = random_points(rng, 2000)
        dt = DistributedRTree(
            pts, small_params(8), organisation="hybrid", page=16,
            replication=2, placement="asura",
        )
        stats = dt.run_queries(window_queries(rng, 16, window=40.0))
        assert stats.n_queries == 16
        assert stats.makespan > 0

    def test_asura_groups_replicated_and_deterministic(self, rng):
        pts = random_points(rng, 1000)
        mk = lambda seed: DistributedRTree(
            pts, small_params(8), "hybrid", page=32, replication=2,
            placement="asura", placement_seed=seed,
        )
        a, b, c = mk(0), mk(0), mk(7)
        assert a._group_replicas == b._group_replicas
        assert a._group_replicas != c._group_replicas
        for reps in a._group_replicas:
            assert len(reps) == 2 and len(set(reps)) == 2

    def test_modulo_layout_unchanged(self, rng):
        # The default placement must keep the historical layout: ASU d
        # serves group d % n_groups, so d and d + n_groups hold equal ids.
        pts = random_points(rng, 1000)
        dt = DistributedRTree(
            pts, small_params(8), "hybrid", page=32, replication=2
        )
        assert dt._group_replicas == [[g, g + 4] for g in range(4)]
        for d in range(4):
            assert np.array_equal(dt.asu_ids[d], dt.asu_ids[d + 4])


class TestOnlineMaintenance:
    def _tree(self, rng, n=2000, threshold=256):
        from repro.apps.rtree import OnlineDistributedRTree

        pts = random_points(rng, n)
        return OnlineDistributedRTree(
            pts, small_params(8), page=32, buffer_threshold=threshold
        )

    @staticmethod
    def _rows(a):
        return sorted(map(tuple, np.atleast_2d(a).tolist()))

    def test_queries_correct_with_buffered_inserts(self, rng):
        tree = self._tree(rng)
        tree.insert(random_points(rng, 100))
        for w in window_queries(rng, 10):
            assert self._rows(tree.query(w)) == self._rows(tree.query_brute(w))

    def test_maintenance_due_threshold(self, rng):
        tree = self._tree(rng, threshold=50)
        assert not tree.maintenance_due
        tree.insert(random_points(rng, 50))
        assert tree.maintenance_due

    def test_maintenance_folds_buffer_into_index(self, rng):
        tree = self._tree(rng, threshold=64)
        before = tree.n_items
        tree.insert(random_points(rng, 100))
        rep = tree.run_maintenance()
        assert rep.n_inserted == 100
        assert tree.buffer.shape[0] == 0
        assert tree.n_items == before + 100
        assert tree.n_maintenance_runs == 1

    def test_queries_correct_after_maintenance(self, rng):
        tree = self._tree(rng)
        inserted = random_points(rng, 200)
        tree.insert(inserted)
        tree.run_maintenance()
        for w in window_queries(rng, 10):
            assert self._rows(tree.query(w)) == self._rows(tree.query_brute(w))

    def test_maintenance_runs_on_asus_not_host(self, rng):
        # The §4.2 claim: lower-level rebalancing is ASU batch work; the
        # host only routes inserts and refreshes the top level.
        tree = self._tree(rng)
        tree.insert(random_points(rng, 500))
        rep = tree.run_maintenance()
        assert rep.makespan > 0
        assert max(rep.asu_cpu_util) > rep.host_util
        assert rep.n_dirty_asus >= 1

    def test_empty_maintenance(self, rng):
        tree = self._tree(rng)
        rep = tree.run_maintenance()
        assert rep.n_inserted == 0
        assert rep.n_dirty_asus == 0

    def test_bad_threshold(self, rng):
        from repro.apps.rtree import OnlineDistributedRTree

        with pytest.raises(ValueError):
            OnlineDistributedRTree(
                random_points(rng, 10), small_params(2), buffer_threshold=0
            )
