"""Tests for streams, sets, arrays, and packets."""

import numpy as np
import pytest

from repro.bte import MemoryBTE
from repro.containers import Packet, RecordArray, RecordSet, RecordStream
from repro.util.records import make_records


def batch_of(keys):
    return make_records(np.asarray(keys, dtype=np.uint32))


class TestPacket:
    def test_counts(self):
        p = Packet(batch_of([1, 2, 3]))
        assert p.n_records == 3
        assert p.nbytes == 3 * 128

    def test_seq_monotone(self):
        a, b = Packet(batch_of([1])), Packet(batch_of([2]))
        assert b.seq > a.seq

    def test_mark_sorted_verify(self):
        p = Packet(batch_of([1, 2, 3]))
        p.mark_sorted(verify=True)
        assert p.sorted

    def test_mark_sorted_verify_rejects_unsorted(self):
        p = Packet(batch_of([3, 1]))
        with pytest.raises(AssertionError):
            p.mark_sorted(verify=True)

    def test_split_preserves_order_and_meta(self):
        p = Packet(batch_of([1, 2, 3, 4, 5]), meta={"sorted": True})
        parts = p.split(2)
        assert [q.n_records for q in parts] == [2, 2, 1]
        assert all(q.sorted for q in parts)
        joined = np.concatenate([q.batch for q in parts])
        assert list(joined["key"]) == [1, 2, 3, 4, 5]

    def test_split_noop_when_small(self):
        p = Packet(batch_of([1]))
        assert p.split(10) == [p]

    def test_split_bad_size(self):
        with pytest.raises(ValueError):
            Packet(batch_of([1])).split(0)


class TestRecordStream:
    def test_ordered_scan(self):
        s = RecordStream("s")
        s.append(batch_of([1, 2, 3]))
        s.append(batch_of([4, 5]))
        got = [list(b["key"]) for b in s.scan(block_records=2)]
        assert got == [[1, 2], [3, 4], [5]]

    def test_pending_tracking(self):
        s = RecordStream("s")
        s.append(batch_of(range(10)))
        s.read(4)
        assert s.pending == 6
        assert len(s) == 10

    def test_rewind(self):
        s = RecordStream("s")
        s.append(batch_of([1, 2]))
        s.read(2)
        s.rewind()
        assert list(s.read(2)["key"]) == [1, 2]

    def test_destructive_scan_releases(self):
        bte = MemoryBTE()
        s = RecordStream("s", bte=bte)
        s.append(batch_of(range(100)))
        s.append(batch_of(range(100)))
        for _ in s.scan(block_records=100, destructive=True):
            pass
        assert bte.nbytes_live("s") == 0

    def test_rewind_after_destructive_starts_at_freed(self):
        s = RecordStream("s")
        s.append(batch_of([1, 2, 3, 4]))
        s.read(2, destructive=True)
        s.rewind()
        assert list(s.read(10)["key"]) == [3, 4]

    def test_shared_bte(self):
        bte = MemoryBTE()
        a = RecordStream("a", bte=bte)
        b = RecordStream("b", bte=bte)
        a.append(batch_of([1]))
        b.append(batch_of([2]))
        assert bte.list_streams() == ["a", "b"]

    def test_open_existing(self):
        bte = MemoryBTE()
        a = RecordStream("a", bte=bte)
        a.append(batch_of([1, 2]))
        again = RecordStream("a", bte=bte)
        assert len(again) == 2

    def test_bad_block_size(self):
        s = RecordStream("s")
        s.append(batch_of([1]))
        with pytest.raises(ValueError):
            list(s.scan(block_records=0))

    def test_delete(self):
        bte = MemoryBTE()
        s = RecordStream("s", bte=bte)
        s.delete()
        assert not bte.exists("s")


class TestRecordSet:
    def test_take_returns_all_packets(self):
        st = RecordSet("set")
        st.add_records(batch_of(range(10)), packet_records=3)
        assert st.n_pending_packets == 4
        seen = []
        for pkt in st.scan():
            seen.extend(pkt.batch["key"].tolist())
        assert sorted(seen) == list(range(10))
        assert st.n_pending == 0
        assert st.n_completed == 10

    def test_reset_scan(self):
        st = RecordSet("set")
        st.add_records(batch_of([1, 2]))
        list(st.scan())
        st.reset_scan()
        assert st.n_pending == 2
        assert st.n_completed == 0

    def test_destructive_scan_drops_records(self):
        st = RecordSet("set")
        st.add_records(batch_of([1, 2, 3]))
        list(st.scan(destructive=True))
        assert len(st) == 0
        assert st.n_completed == 0

    def test_take_empty_returns_none(self):
        assert RecordSet("set").take() is None

    def test_concurrent_consumers_partition_packets(self):
        st = RecordSet("set")
        st.add_records(batch_of(range(20)), packet_records=5)
        a, b = [], []
        while True:
            pkt = st.take()
            if pkt is None:
                break
            a.append(pkt)
            pkt = st.take()
            if pkt is not None:
                b.append(pkt)
        total = sum(p.n_records for p in a) + sum(p.n_records for p in b)
        assert total == 20
        assert len(a) == 2 and len(b) == 2

    def test_wrong_dtype_rejected(self):
        st = RecordSet("set")
        with pytest.raises(ValueError):
            st.add_packet(Packet(np.zeros(2, dtype=np.float32)))

    def test_read_all_has_everything(self):
        st = RecordSet("set")
        st.add_records(batch_of([5, 6]))
        list(st.scan())
        st.add_records(batch_of([7]))
        assert sorted(st.read_all()["key"].tolist()) == [5, 6, 7]


class TestRecordArray:
    def test_zero_filled_on_create(self):
        arr = RecordArray("a", length=5)
        assert len(arr) == 5
        assert arr[3]["key"] == 0

    def test_from_batch(self):
        arr = RecordArray.from_batch("a", batch_of([9, 8, 7]))
        assert arr[0]["key"] == 9
        assert list(arr.read(1, 2)["key"]) == [8, 7]

    def test_out_of_range_rejected(self):
        arr = RecordArray.from_batch("a", batch_of([1, 2]))
        with pytest.raises(IndexError):
            arr.read(1, 5)
        with pytest.raises(IndexError):
            arr.read(-1, 1)

    def test_write_overwrites(self):
        arr = RecordArray.from_batch("a", batch_of([1, 2, 3]))
        arr.write(1, batch_of([42]))
        assert [int(k) for k in arr.read_all()["key"]] == [1, 42, 3]

    def test_random_read_counter(self):
        arr = RecordArray.from_batch("a", batch_of([1, 2, 3]))
        arr.read(0, 1)
        arr.read(2, 1)
        assert arr.n_random_reads == 2

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            RecordArray("a", length=-1)

    def test_empty_array(self):
        arr = RecordArray("a", length=0)
        assert len(arr) == 0
        assert arr.read_all().shape == (0,)
