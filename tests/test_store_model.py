"""Model-based (stateful hypothesis) tests for the Store channel.

Drives a :class:`~repro.sim.Store` with random sequences of puts, gets, and
capacity choices, checking it against a plain deque model: FIFO delivery,
capacity accounting, and counter consistency must hold for every interleaving.
"""

from collections import deque

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
import hypothesis.strategies as st

from repro.sim import Simulator, Store


class StoreModel(RuleBasedStateMachine):
    @initialize(capacity=st.one_of(st.none(), st.integers(1, 5)))
    def setup(self, capacity):
        self.sim = Simulator()
        self.store = Store(self.sim, capacity=capacity)
        self.capacity = capacity
        self.model = deque()          # items logically accepted
        self.pending_puts = deque()   # items waiting for capacity
        self.expected_gets = deque()  # items promised to blocked getters
        self.n_got = 0
        self._counter = 0

    def _settle_model(self):
        # Mirror the store's settle loop: accept puts while capacity remains,
        # then serve blocked getters FIFO.
        progress = True
        while progress:
            progress = False
            while self.pending_puts and (
                self.capacity is None or len(self.model) < self.capacity
            ):
                self.model.append(self.pending_puts.popleft())
                progress = True
            while self.expected_gets and self.model:
                expected = self.model.popleft()
                promised = self.expected_gets.popleft()
                promised.append(expected)
                self.n_got += 1
                progress = True

    @rule()
    def put(self):
        self._counter += 1
        item = self._counter
        self.store.put(item)
        self.pending_puts.append(item)
        self._settle_model()
        self.sim.run()

    @rule()
    def get(self):
        ev = self.store.get()
        promised: list = []
        ev.callbacks.append(lambda e: promised.append(e.value)) if ev.callbacks else None
        slot: list = []
        self.expected_gets.append(slot)
        self._settle_model()
        self.sim.run()
        # If the event already fired, its value must match the model's slot.
        if ev.triggered:
            assert slot, "store delivered an item the model did not expect"
            assert ev.value == slot[0]

    @invariant()
    def buffered_matches_model(self):
        assert list(self.store.items) == list(self.model)

    @invariant()
    def counters_consistent(self):
        assert self.store.n_got == self.n_got
        assert self.store.n_put == len(self.model) + self.n_got

    @invariant()
    def capacity_respected(self):
        if self.capacity is not None:
            assert len(self.store.items) <= self.capacity


StoreModelTest = StoreModel.TestCase
StoreModelTest.settings = settings(max_examples=40, stateful_step_count=30, deadline=None)
