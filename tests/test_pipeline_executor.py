"""Tests for the generic emulated pipeline executor."""

import numpy as np
import pytest

from repro.bench.fig9 import fig9_params
from repro.core import Placement, PipelineJob
from repro.functors import (
    AggregateFunctor,
    BlockSortFunctor,
    Dataflow,
    DistributeFunctor,
    FilterFunctor,
    FunctorError,
    MapFunctor,
    ScanFunctor,
)
from repro.util.distributions import make_workload
from repro.util.records import make_records
from repro.util.rng import RngRegistry


def make_data(params, n, seed=3):
    rngs = RngRegistry(seed)
    per = n // params.n_asus
    return [
        make_workload(rngs.get(f"w.{d}"), per, "uniform", params.schema)
        for d in range(params.n_asus)
    ]


def chain(*stages, kinds=None, replicas=None):
    """Build a linear dataflow SOURCE -> s1 -> ... -> SINK."""
    g = Dataflow()
    names = []
    replicas = replicas or {}
    for i, (name, functor) in enumerate(stages):
        g.add_stage(name, functor, replicas=replicas.get(name, 1))
        names.append(name)
    kinds = kinds or {}
    prev = Dataflow.SOURCE
    for name in names:
        g.connect(prev, name, kind=kinds.get(name, "set"))
        prev = name
    g.connect(prev, Dataflow.SINK, kind="set")
    return g


class TestLinearPipelines:
    def test_filter_on_asus_matches_direct_eval(self):
        params = fig9_params(n_asus=4)
        data = make_data(params, 1 << 13)
        threshold = 1 << 30
        g = chain(
            ("keep", FilterFunctor(lambda b: b["key"] < threshold)),
        )
        g.stages["keep"].replicas = params.n_asus
        p = Placement()
        p.assign("keep", "asu", list(range(params.n_asus)))
        job = PipelineJob(params, g, p, data, seed=1)
        res = job.run()
        expect = np.concatenate([d[d["key"] < threshold] for d in data])
        assert sorted(res.output["key"].tolist()) == sorted(expect["key"].tolist())
        assert res.makespan > 0

    def test_two_stage_map_then_filter(self):
        params = fig9_params(n_asus=2)
        data = make_data(params, 1 << 12)

        def halve(b):
            out = make_records((b["key"] // 2).astype(np.uint32), params.schema)
            return out

        g = chain(
            ("halve", MapFunctor(halve, compares=1)),
            ("keep", FilterFunctor(lambda b: b["key"] % 2 == 0)),
        )
        g.stages["halve"].replicas = 2
        p = Placement()
        p.assign("halve", "asu", [0, 1])
        p.assign("keep", "host", [0])
        res = PipelineJob(params, g, p, data, seed=1).run()
        direct = np.concatenate([halve(d) for d in data])
        direct = direct[direct["key"] % 2 == 0]
        assert sorted(res.output["key"].tolist()) == sorted(direct["key"].tolist())

    def test_replicated_host_stage_balances(self):
        params = fig9_params(n_asus=4, n_hosts=2)
        data = make_data(params, 1 << 13)
        g = chain(("scan", ScanFunctor()))
        g.stages["scan"].replicas = 2
        p = Placement()
        p.assign("scan", "host", [0, 1])
        res = PipelineJob(params, g, p, data, routing="round_robin", seed=2).run()
        per_inst = res.records_per_instance["scan"]
        assert sum(per_inst) == sum(d.shape[0] for d in data)
        assert per_inst[0] == per_inst[1]  # round-robin splits exactly

    def test_aggregate_on_asus(self):
        params = fig9_params(n_asus=4)
        data = make_data(params, 1 << 12)
        agg = AggregateFunctor("count")
        g = chain(("count", agg))
        g.stages["count"].replicas = 4
        p = Placement()
        p.assign("count", "asu", [0, 1, 2, 3])
        res = PipelineJob(params, g, p, data, seed=1).run()
        assert agg.value == sum(d.shape[0] for d in data)
        assert res.output.shape[0] == 0  # aggregates emit no records

    def test_blocksort_stage_sorts_blocks(self):
        params = fig9_params(n_asus=2)
        data = make_data(params, 1 << 12)
        g = chain(("sortblk", BlockSortFunctor(params.block_records)))
        p = Placement()
        p.assign("sortblk", "host", [0])
        res = PipelineJob(params, g, p, data, seed=1).run()
        assert res.output.shape[0] == sum(d.shape[0] for d in data)

    def test_asu_placement_cuts_traffic_for_selective_filter(self):
        params = fig9_params(n_asus=8)
        data = make_data(params, 1 << 14)
        threshold = int((2**32 - 1) * 0.05)

        def build(node_class, instances):
            g = chain(("keep", FilterFunctor(lambda b: b["key"] < threshold)))
            g.stages["keep"].replicas = len(instances)
            p = Placement()
            p.assign("keep", node_class, instances)
            return PipelineJob(params, g, p, data, seed=1).run()

        on_asu = build("asu", list(range(8)))
        on_host = build("host", [0])
        assert on_asu.net_bytes < 0.2 * on_host.net_bytes
        assert sorted(on_asu.output["key"].tolist()) == sorted(
            on_host.output["key"].tolist()
        )

    def test_stream_edge_preserves_order(self):
        params = fig9_params(n_asus=1)  # one source keeps a global order
        data = make_data(params, 1 << 12)
        seen = []

        def spy(b):
            seen.append(b["key"][0])
            return b

        g = chain(("spy", MapFunctor(spy, compares=0)), kinds={"spy": "stream"})
        p = Placement()
        p.assign("spy", "host", [0])
        PipelineJob(params, g, p, data, seed=1).run()
        firsts = [data[0][s : s + params.block_records]["key"][0]
                  for s in range(0, data[0].shape[0], params.block_records)]
        assert seen == firsts  # blocks arrived in stream order

    def test_deterministic(self):
        params = fig9_params(n_asus=4)
        data = make_data(params, 1 << 12)

        def build():
            g = chain(("scan", ScanFunctor()))
            g.stages["scan"].replicas = 4
            p = Placement()
            p.assign("scan", "asu", [0, 1, 2, 3])
            return PipelineJob(params, g, p, data, seed=5).run()

        assert build().makespan == build().makespan


class TestValidation:
    def test_multi_output_functor_rejected(self):
        params = fig9_params(n_asus=2)
        g = chain(("dist", DistributeFunctor.uniform(4)))
        p = Placement()
        p.assign("dist", "host", [0])
        with pytest.raises(FunctorError, match="single-output"):
            PipelineJob(params, g, p, make_data(params, 1 << 10))

    def test_wrong_asu_data_length_rejected(self):
        params = fig9_params(n_asus=4)
        g = chain(("scan", ScanFunctor()))
        p = Placement()
        p.assign("scan", "host", [0])
        with pytest.raises(ValueError, match="asu_data"):
            PipelineJob(params, g, p, [np.empty(0, params.schema.dtype)])

    def test_nonlinear_graph_rejected(self):
        params = fig9_params(n_asus=2)
        g = Dataflow()
        g.add_stage("a", ScanFunctor())
        g.add_stage("b", ScanFunctor())
        g.add_stage("c", ScanFunctor())
        g.connect(Dataflow.SOURCE, "a")
        g.connect("a", "b")
        g.connect("a", "c")  # fan-out: not a chain
        p = Placement()
        for n in "abc":
            p.assign(n, "host", [0])
        with pytest.raises(FunctorError, match="linear chain"):
            PipelineJob(params, g, p, make_data(params, 1 << 10))

    def test_ineligible_asu_placement_rejected(self):
        params = fig9_params(n_asus=2)
        g = chain(("big", BlockSortFunctor(1 << 22)))  # state > ASU memory
        p = Placement()
        p.assign("big", "asu", [0])
        with pytest.raises(FunctorError, match="cannot run on ASUs"):
            PipelineJob(params, g, p, make_data(params, 1 << 10))


class TestExecutorProperties:
    """Randomised chains: any composition of maps/filters must match the
    direct (non-emulated) evaluation on any placement."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=10, deadline=None)
    @given(
        stage_specs=st.lists(
            st.tuples(
                st.sampled_from(["shift", "mask", "keep_even", "keep_low"]),
                st.integers(1, 16),
            ),
            min_size=1,
            max_size=4,
        ),
        node_class=st.sampled_from(["asu", "host"]),
        seed=st.integers(0, 50),
    )
    def test_property_random_chain_matches_direct(self, stage_specs, node_class, seed):
        import numpy as np

        params = fig9_params(n_asus=2)
        data = make_data(params, 1 << 11, seed=seed)

        def build_fn(kind, p):
            if kind == "shift":
                return ("map", lambda b: make_records(
                    (b["key"] >> (p % 8)).astype(np.uint32), params.schema))
            if kind == "mask":
                return ("map", lambda b: make_records(
                    (b["key"] & np.uint32(2**p - 1)).astype(np.uint32), params.schema))
            if kind == "keep_even":
                return ("filter", lambda b: b["key"] % 2 == 0)
            return ("filter", lambda b: b["key"] < np.uint32(2**31))

        g = Dataflow()
        names = []
        fns = []
        for i, (kind, p) in enumerate(stage_specs):
            role, fn = build_fn(kind, p)
            name = f"s{i}"
            functor = (
                MapFunctor(fn, compares=1) if role == "map" else FilterFunctor(fn)
            )
            n_inst = 2 if node_class == "asu" else 1
            g.add_stage(name, functor, replicas=n_inst)
            names.append(name)
            fns.append((role, fn))
        prev = Dataflow.SOURCE
        for name in names:
            g.connect(prev, name, kind="set")
            prev = name
        g.connect(prev, Dataflow.SINK, kind="set")

        p = Placement()
        instances = [0, 1] if node_class == "asu" else [0]
        for name in names:
            p.assign(name, node_class, instances)

        res = PipelineJob(params, g, p, data, seed=seed).run()

        # Direct evaluation.
        import numpy as _np
        direct_parts = []
        for batch in data:
            cur = batch
            for role, fn in fns:
                if cur.shape[0] == 0:
                    break
                if role == "map":
                    cur = fn(cur)
                else:
                    cur = cur[_np.asarray(fn(cur), dtype=bool)]
            if cur.shape[0]:
                direct_parts.append(cur)
        direct = (
            _np.concatenate(direct_parts)
            if direct_parts
            else _np.empty(0, dtype=params.schema.dtype)
        )
        assert sorted(res.output["key"].tolist()) == sorted(direct["key"].tolist())
