"""Tests for the discrete-event kernel: events, timeouts, ordering, processes."""

import pytest

from repro.sim import (
    Interrupt,
    SimError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        got = []
        ev.callbacks.append(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimError):
            _ = ev.value
        with pytest.raises(SimError):
            _ = ev.ok


class TestTimeout:
    def test_advances_clock(self, sim):
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimError):
            sim.timeout(-1.0)

    def test_run_until_stops_early(self, sim):
        sim.timeout(10.0)
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_fifo_tie_break(self, sim):
        order = []
        ev1 = sim.timeout(1.0, value="a")
        ev2 = sim.timeout(1.0, value="b")
        ev1.callbacks.append(lambda e: order.append(e.value))
        ev2.callbacks.append(lambda e: order.append(e.value))
        sim.run()
        assert order == ["a", "b"]


class TestProcess:
    def test_simple_sequence(self, sim):
        trace = []

        def proc():
            trace.append(("start", sim.now))
            yield sim.timeout(1.5)
            trace.append(("mid", sim.now))
            yield sim.timeout(2.5)
            trace.append(("end", sim.now))
            return "done"

        p = sim.process(proc())
        sim.run()
        assert trace == [("start", 0.0), ("mid", 1.5), ("end", 4.0)]
        assert p.value == "done"

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.timeout(3.0)
            return 99

        def parent():
            result = yield sim.process(child())
            return result + 1

        p = sim.process(parent())
        sim.run()
        assert p.value == 100
        assert sim.now == 3.0

    def test_yield_non_event_raises(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimError, match="must yield Event"):
            sim.run()

    def test_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as e:
                return f"caught {e}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "caught boom"

    def test_unhandled_exception_raises_from_run(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("unseen")

        sim.process(proc())
        with pytest.raises(RuntimeError, match="unseen"):
            sim.run()

    def test_wait_on_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("v")

        def proc():
            got = yield ev
            return got

        p = sim.process(proc())
        sim.run()
        assert p.value == "v"

    def test_interrupt_wakes_sleeper(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        def waker(target):
            yield sim.timeout(2.0)
            target.interrupt("wake up")

        p = sim.process(sleeper())
        sim.process(waker(p))
        sim.run()
        assert p.value == ("interrupted", "wake up", 2.0)

    def test_interrupt_dead_process_rejected(self, sim):
        def quick():
            yield sim.timeout(0.0)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimError):
            p.interrupt()

    def test_nongenerator_rejected(self, sim):
        with pytest.raises(SimError):
            sim.process(lambda: None)


class TestComposite:
    def test_all_of(self, sim):
        def proc():
            t1 = sim.timeout(1.0, value="a")
            t2 = sim.timeout(2.0, value="b")
            results = yield sim.all_of([t1, t2])
            return (sim.now, sorted(results.values()))

        p = sim.process(proc())
        sim.run()
        assert p.value == (2.0, ["a", "b"])

    def test_any_of(self, sim):
        def proc():
            t1 = sim.timeout(1.0, value="fast")
            t2 = sim.timeout(5.0, value="slow")
            results = yield sim.any_of([t1, t2])
            return (sim.now, list(results.values()))

        p = sim.process(proc())
        sim.run()
        assert p.value == (1.0, ["fast"])

    def test_empty_all_of_fires_immediately(self, sim):
        def proc():
            yield sim.all_of([])
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0


class TestDeterminism:
    def test_identical_runs(self):
        def build():
            sim = Simulator()
            log = []

            def worker(i):
                for k in range(3):
                    yield sim.timeout(0.5 * (i + 1))
                    log.append((sim.now, i, k))

            for i in range(4):
                sim.process(worker(i))
            sim.run()
            return log

        assert build() == build()

    def test_event_count_tracked(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.n_events_processed == 2
