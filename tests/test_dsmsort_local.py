"""Tests for the in-process DSM-Sort."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bte import MemoryBTE
from repro.containers import RecordStream
from repro.core import DSMConfig
from repro.dsmsort import dsm_sort_local
from repro.util.distributions import make_workload
from repro.util.records import make_records
from repro.util.rng import RngRegistry
from repro.util.validation import check_sorted_permutation


def stream_of(keys, bte=None):
    s = RecordStream("in", bte=bte or MemoryBTE())
    s.append(make_records(np.asarray(keys, dtype=np.uint32)))
    return s


class TestDsmSortLocal:
    def test_sorts_random_input(self):
        rng = RngRegistry(11).get("w")
        data = make_workload(rng, 5000, "uniform")
        bte = MemoryBTE()
        src = RecordStream("in", bte=bte)
        src.append(data)
        cfg = DSMConfig.for_n(5000, alpha=8, gamma=4)
        out, trace = dsm_sort_local(src, cfg, block_records=512)
        check_sorted_permutation(data, out.read_all())
        assert trace.n_records == 5000
        assert len(trace.bucket_sizes) == 8
        assert sum(trace.bucket_sizes) == 5000

    def test_run_count_matches_beta(self):
        src = stream_of(range(1000))
        cfg = DSMConfig(n_records=1000, alpha=1, beta=100, gamma=4)
        _out, trace = dsm_sort_local(src, cfg, block_records=100)
        assert trace.n_runs == 10

    def test_multi_pass_merge(self):
        rng = RngRegistry(2).get("w")
        data = make_workload(rng, 2000, "uniform")
        src = RecordStream("in", bte=MemoryBTE())
        src.append(data)
        # 2000 records, alpha=1, beta=10 -> 200 runs; gamma=4 -> 4 passes.
        cfg = DSMConfig(n_records=2000, alpha=1, beta=10, gamma=4)
        out, trace = dsm_sort_local(src, cfg, block_records=100)
        check_sorted_permutation(data, out.read_all())
        assert trace.merge_passes_per_bucket == [4]

    def test_empty_input(self):
        src = stream_of([])
        cfg = DSMConfig(n_records=1, alpha=4, beta=2, gamma=2)
        out, trace = dsm_sort_local(src, cfg)
        assert len(out) == 0
        assert trace.n_runs == 0

    def test_skewed_input_with_uniform_splitters_shows_skew(self):
        rng = RngRegistry(5).get("w")
        data = make_workload(rng, 4000, "exponential", scale=0.05)
        src = RecordStream("in", bte=MemoryBTE())
        src.append(data)
        cfg = DSMConfig.for_n(4000, alpha=8, gamma=4)
        out, trace = dsm_sort_local(src, cfg, block_records=512)
        check_sorted_permutation(data, out.read_all())
        assert trace.max_bucket_skew > 2.0  # exponential keys pile up low

    def test_sampled_splitters_reduce_skew(self):
        rng_w = RngRegistry(5).get("w")
        data = make_workload(rng_w, 4000, "exponential", scale=0.05)
        cfg = DSMConfig.for_n(4000, alpha=8, gamma=4)

        src1 = RecordStream("in", bte=MemoryBTE())
        src1.append(data)
        _o1, t_uniform = dsm_sort_local(src1, cfg, block_records=512)

        src2 = RecordStream("in", bte=MemoryBTE())
        src2.append(data)
        o2, t_sampled = dsm_sort_local(
            src2, cfg, block_records=512, sampled_splitters=True,
            rng=RngRegistry(5).get("s"),
        )
        check_sorted_permutation(data, o2.read_all())
        assert t_sampled.max_bucket_skew < t_uniform.max_bucket_skew / 2

    def test_temporaries_cleaned(self):
        bte = MemoryBTE()
        src = stream_of(range(500), bte=bte)
        cfg = DSMConfig.for_n(500, alpha=4, gamma=2)
        dsm_sort_local(src, cfg, out_name="out", block_records=64)
        assert set(bte.list_streams()) == {"in", "out"}

    def test_duplicate_keys(self):
        src = stream_of([7] * 100 + [3] * 100)
        cfg = DSMConfig(n_records=200, alpha=4, beta=16, gamma=2)
        out, _ = dsm_sort_local(src, cfg, block_records=32)
        keys = out.read_all()["key"]
        assert list(keys) == [3] * 100 + [7] * 100


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=500),
    alpha=st.sampled_from([1, 2, 8]),
    beta=st.sampled_from([1, 13, 128]),
    gamma=st.sampled_from([2, 4]),
)
def test_property_dsm_local_sorts(keys, alpha, beta, gamma):
    data = make_records(np.asarray(keys, dtype=np.uint32))
    src = RecordStream("in", bte=MemoryBTE())
    src.append(data)
    cfg = DSMConfig(n_records=max(len(keys), 1), alpha=alpha, beta=beta, gamma=gamma)
    out, _ = dsm_sort_local(src, cfg, block_records=64)
    check_sorted_permutation(data, out.read_all())
