"""Tests for the CPU, disk, and network device models."""

import pytest

from repro.emulator.cpu import Cpu
from repro.emulator.disk import Disk
from repro.emulator.net import Network
from repro.emulator.params import SystemParams, TimingMode
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def params():
    return SystemParams()


class TestCpu:
    def test_modeled_time_is_cycles_over_clock(self, sim, params):
        cpu = Cpu(sim, clock_hz=1000.0, params=params)

        def proc():
            yield from cpu.execute(cycles=500.0)

        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_fn_really_executes(self, sim, params):
        cpu = Cpu(sim, clock_hz=1e9, params=params)

        def proc():
            result = yield from cpu.execute(cycles=10, fn=lambda x: x * 2, args=(21,))
            return result

        p = sim.process(proc())
        sim.run()
        assert p.value == 42

    def test_serialization_on_one_core(self, sim, params):
        cpu = Cpu(sim, clock_hz=100.0, params=params)
        ends = []

        def worker():
            yield from cpu.execute(cycles=100.0)  # 1s each
            ends.append(sim.now)

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert ends == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_utilization_full_when_saturated(self, sim, params):
        cpu = Cpu(sim, clock_hz=100.0, params=params)

        def worker():
            yield from cpu.execute(cycles=300.0)

        sim.process(worker())
        sim.run()
        assert cpu.utilization() == pytest.approx(1.0)

    def test_cycles_accounted(self, sim, params):
        cpu = Cpu(sim, clock_hz=100.0, params=params)

        def worker():
            yield from cpu.execute(cycles=30.0)
            yield from cpu.execute(cycles=70.0)

        sim.process(worker())
        sim.run()
        assert cpu.cycles_charged == pytest.approx(100.0)
        assert cpu.n_segments == 2

    def test_measured_mode_charges_scaled_wall_time(self, sim):
        params = SystemParams(
            timing_mode=TimingMode.MEASURED, measured_reference_hz=1e9
        )
        cpu = Cpu(sim, clock_hz=1e6, params=params)  # 1000x slower than ref

        def busy_fn():
            total = 0
            for i in range(20000):
                total += i
            return total

        def proc():
            yield from cpu.execute(fn=busy_fn)

        sim.process(proc())
        sim.run()
        # Some positive time passed, scaled up by the 1000x clock gap.
        assert sim.now > 0.0

    def test_needs_cycles_or_fn(self, sim, params):
        cpu = Cpu(sim, clock_hz=1e6, params=params)

        def proc():
            yield from cpu.execute()

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_bad_clock(self, sim, params):
        with pytest.raises(ValueError):
            Cpu(sim, clock_hz=0.0, params=params)


class TestDisk:
    def test_read_takes_bytes_over_rate(self, sim):
        disk = Disk(sim, rate=100.0)

        def proc():
            yield from disk.read(50)

        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_sequential_reads_stream_back_to_back(self, sim):
        disk = Disk(sim, rate=100.0)
        times = []

        def proc():
            for _ in range(4):
                yield from disk.read(100)
                times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [pytest.approx(t) for t in (1.0, 2.0, 3.0, 4.0)]
        assert disk.utilization() == pytest.approx(1.0)

    def test_write_behind_first_write_returns_immediately(self, sim):
        disk = Disk(sim, rate=100.0)
        t_after_first = []

        def proc():
            yield from disk.write(100)
            t_after_first.append(sim.now)
            yield from disk.write(100)  # waits for first to drain
            t_after_first.append(sim.now)

        sim.process(proc())
        sim.run()
        assert t_after_first[0] == pytest.approx(0.0)
        assert t_after_first[1] == pytest.approx(1.0)

    def test_drain_waits_for_outstanding_writes(self, sim):
        disk = Disk(sim, rate=100.0)

        def proc():
            yield from disk.write(100)
            yield from disk.drain()
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(1.0)

    def test_stats(self, sim):
        disk = Disk(sim, rate=1000.0)

        def proc():
            yield from disk.read(10)
            yield from disk.write(30)

        sim.process(proc())
        sim.run()
        assert disk.stats.n_reads == 1
        assert disk.stats.n_writes == 1
        assert disk.stats.bytes_read == 10
        assert disk.stats.bytes_written == 30
        assert disk.stats.n_ops == 2
        assert disk.stats.total_bytes == 40

    def test_negative_sizes_rejected(self, sim):
        disk = Disk(sim, rate=100.0)

        def bad_read():
            yield from disk.read(-1)

        sim.process(bad_read())
        with pytest.raises(ValueError):
            sim.run()

    def test_bad_rate(self, sim):
        with pytest.raises(ValueError):
            Disk(sim, rate=0.0)


class TestNetwork:
    def test_send_recv_roundtrip(self, sim):
        net = Network(sim, bandwidth=1000.0, latency=0.1)
        net.register("a")
        net.register("b")

        def sender():
            yield from net.send("a", "b", payload="hello", nbytes=100)

        def receiver():
            msg = yield from net.recv("b")
            return (msg.payload, sim.now)

        sim.process(sender())
        p = sim.process(receiver())
        sim.run()
        payload, t = p.value
        assert payload == "hello"
        # 100B at 1000B/s = 0.1s tx + 0.1s latency.
        assert t == pytest.approx(0.2)

    def test_sender_blocks_only_for_tx(self, sim):
        net = Network(sim, bandwidth=1000.0, latency=5.0)
        net.register("a")
        net.register("b")

        def sender():
            yield from net.send("a", "b", payload=None, nbytes=100)
            return sim.now

        p = sim.process(sender())
        sim.run()
        assert p.value == pytest.approx(0.1)  # latency not charged to sender

    def test_link_serializes_messages(self, sim):
        net = Network(sim, bandwidth=100.0, latency=0.0)
        net.register("a")
        net.register("b")
        arrivals = []

        def sender():
            yield from net.send("a", "b", None, nbytes=100)
            yield from net.send("a", "b", None, nbytes=100)

        def receiver():
            for _ in range(2):
                yield from net.recv("b")
                arrivals.append(sim.now)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_distinct_links_are_parallel(self, sim):
        net = Network(sim, bandwidth=100.0, latency=0.0)
        for n in ("a", "b", "c"):
            net.register(n)
        arrivals = {}

        def sender(dst):
            yield from net.send("a", dst, None, nbytes=100)

        def receiver(name):
            yield from net.recv(name)
            arrivals[name] = sim.now

        sim.process(sender("b"))
        sim.process(sender("c"))
        sim.process(receiver("b"))
        sim.process(receiver("c"))
        sim.run()
        # Different destination links do not serialise with each other.
        assert arrivals["b"] == pytest.approx(1.0)
        assert arrivals["c"] == pytest.approx(1.0)

    def test_unregistered_destination_rejected(self, sim):
        net = Network(sim, bandwidth=100.0, latency=0.0)
        net.register("a")

        def sender():
            yield from net.send("a", "ghost", None, nbytes=1)

        sim.process(sender())
        with pytest.raises(KeyError):
            sim.run()

    def test_byte_accounting(self, sim):
        net = Network(sim, bandwidth=1e6, latency=0.0)
        net.register("a")
        net.register("b")

        def sender():
            yield from net.send("a", "b", None, nbytes=123)

        sim.process(sender())
        sim.run()
        assert net.bytes_total == 123
        assert net.n_messages == 1
