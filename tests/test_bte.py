"""Tests for Block Transfer Engines (memory, file, emulated)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bte import BteError, FileBTE, MemoryBTE
from repro.util.records import RecordSchema, make_records


def batch_of(keys):
    return make_records(np.asarray(keys, dtype=np.uint32))


@pytest.fixture(params=["memory", "file"])
def bte(request, tmp_path):
    if request.param == "memory":
        return MemoryBTE()
    return FileBTE(tmp_path / "bte")


class TestLifecycle:
    def test_create_open_delete(self, bte):
        h = bte.create("s")
        assert bte.exists("s")
        assert bte.length(h) == 0
        h2 = bte.open("s")
        assert h2.cursor == 0
        bte.delete("s")
        assert not bte.exists("s")

    def test_create_duplicate_rejected(self, bte):
        bte.create("s")
        with pytest.raises(BteError):
            bte.create("s")

    def test_open_missing_rejected(self, bte):
        with pytest.raises(BteError):
            bte.open("ghost")

    def test_delete_missing_rejected(self, bte):
        with pytest.raises(BteError):
            bte.delete("ghost")

    def test_list_streams_sorted(self, bte):
        for name in ("b", "a", "c"):
            bte.create(name)
        assert bte.list_streams() == ["a", "b", "c"]


class TestReadWrite:
    def test_append_read_roundtrip(self, bte):
        h = bte.create("s")
        bte.append(h, batch_of([1, 2, 3]))
        bte.append(h, batch_of([4, 5]))
        assert bte.length(h) == 5
        out = bte.read_at(h, 0, 5)
        assert list(out["key"]) == [1, 2, 3, 4, 5]

    def test_read_across_chunk_boundary(self, bte):
        h = bte.create("s")
        bte.append(h, batch_of([1, 2, 3]))
        bte.append(h, batch_of([4, 5, 6]))
        out = bte.read_at(h, 2, 2)
        assert list(out["key"]) == [3, 4]

    def test_read_past_end_truncates(self, bte):
        h = bte.create("s")
        bte.append(h, batch_of([1, 2]))
        out = bte.read_at(h, 1, 100)
        assert list(out["key"]) == [2]

    def test_read_empty_region(self, bte):
        h = bte.create("s")
        bte.append(h, batch_of([1]))
        assert bte.read_at(h, 5, 3).shape == (0,)
        assert bte.read_at(h, 0, 0).shape == (0,)

    def test_append_empty_is_noop(self, bte):
        h = bte.create("s")
        bte.append(h, batch_of([]))
        assert bte.length(h) == 0

    def test_wrong_dtype_rejected(self, bte):
        h = bte.create("s")
        with pytest.raises(BteError):
            bte.append(h, np.zeros(3, dtype=np.float64))

    def test_sequential_cursor(self, bte):
        h = bte.create("s")
        bte.append(h, batch_of(range(10)))
        first = bte.read_next(h, 4)
        second = bte.read_next(h, 4)
        third = bte.read_next(h, 4)
        assert list(first["key"]) == [0, 1, 2, 3]
        assert list(second["key"]) == [4, 5, 6, 7]
        assert list(third["key"]) == [8, 9]
        assert bte.at_end(h)

    def test_closed_handle_rejected(self, bte):
        h = bte.create("s")
        bte.close(h)
        with pytest.raises(BteError):
            bte.append(h, batch_of([1]))

    def test_write_all_read_all(self, bte):
        h = bte.write_all("s", batch_of([7, 8, 9]))
        assert list(bte.read_all(h)["key"]) == [7, 8, 9]

    def test_custom_schema(self, bte):
        small = RecordSchema(record_size=8, key_dtype="<u4")
        h = bte.create("tiny", schema=small)
        bte.append(h, make_records(np.array([1], dtype=np.uint32), small))
        out = bte.read_at(h, 0, 1)
        assert out.dtype == small.dtype


class TestTruncateFront:
    def test_freed_records_unreadable(self, bte):
        h = bte.create("s")
        bte.append(h, batch_of([1, 2, 3, 4]))
        bte.truncate_front(h, 2)
        with pytest.raises(BteError):
            bte.read_at(h, 0, 2)
        out = bte.read_at(h, 2, 2)
        assert list(out["key"]) == [3, 4]

    def test_length_unchanged_by_truncate(self, bte):
        h = bte.create("s")
        bte.append(h, batch_of([1, 2, 3]))
        bte.truncate_front(h, 2)
        assert bte.length(h) == 3  # numbering preserved

    def test_memory_actually_released(self):
        bte = MemoryBTE()
        h = bte.create("s")
        bte.append(h, batch_of(range(100)))
        bte.append(h, batch_of(range(100)))
        before = bte.nbytes_live("s")
        bte.truncate_front(h, 100)  # frees exactly the first chunk
        assert bte.nbytes_live("s") < before


class TestStats:
    def test_io_accounting(self, bte):
        h = bte.create("s")
        bte.append(h, batch_of(range(10)))
        bte.read_at(h, 0, 10)
        assert bte.stats.bytes_written == 10 * 128
        assert bte.stats.bytes_read == 10 * 128
        assert bte.stats.blocks_written >= 1
        assert bte.stats.total_ios >= 2

    def test_block_count_ceil(self):
        bte = MemoryBTE(block_size=128)
        h = bte.create("s")
        bte.append(h, batch_of([1, 2, 3]))  # 384 bytes = 3 blocks of 128
        assert bte.stats.blocks_written == 3


class TestFilePersistence:
    def test_reopen_from_disk(self, tmp_path):
        root = tmp_path / "bte"
        b1 = FileBTE(root)
        h = b1.create("persist")
        b1.append(h, batch_of([1, 2, 3]))
        b2 = FileBTE(root)  # fresh instance over the same directory
        assert b2.exists("persist")
        h2 = b2.open("persist")
        assert list(b2.read_all(h2)["key"]) == [1, 2, 3]

    def test_odd_stream_names(self, tmp_path):
        b = FileBTE(tmp_path / "bte")
        h = b.create("run/3:temp era")
        b.append(h, batch_of([9]))
        assert list(b.read_all(h)["key"]) == [9]


@settings(max_examples=25, deadline=None)
@given(
    chunks=st.lists(
        st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=20),
        min_size=1,
        max_size=6,
    ),
    start=st.integers(0, 60),
    count=st.integers(0, 60),
)
def test_property_read_matches_concat(chunks, start, count):
    """Reading any window equals slicing the concatenation of appends."""
    bte = MemoryBTE()
    h = bte.create("s")
    allkeys = []
    for ch in chunks:
        bte.append(h, batch_of(ch))
        allkeys.extend(ch)
    expect = allkeys[start : start + count]
    got = list(bte.read_at(h, start, count)["key"])
    assert got == expect
