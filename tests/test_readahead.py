"""Tests for the shared read-ahead helper."""

import pytest

from repro.emulator import ActivePlatform, ReadAhead, SystemParams


@pytest.fixture
def platform():
    return ActivePlatform(SystemParams(n_hosts=1, n_asus=1))


class TestReadAhead:
    def test_blocks_arrive_in_order_and_stream(self, platform):
        asu = platform.asus[0]
        nbytes = 1 << 20  # 1 MiB blocks
        arrivals = []

        def proc():
            ra = ReadAhead(platform, asu, [nbytes] * 4, depth=2)
            for _ in range(4):
                yield ra.wait_next()
                arrivals.append(platform.sim.now)

        platform.spawn(proc())
        platform.sim.run()
        per_block = nbytes / platform.params.disk_rate
        # Back-to-back streaming: block i done at (i+1) * transfer time.
        for i, t in enumerate(arrivals):
            assert t == pytest.approx((i + 1) * per_block, rel=1e-6)

    def test_disk_stays_busy_while_consumer_computes(self, platform):
        asu = platform.asus[0]
        nbytes = 1 << 20
        per_block = nbytes / platform.params.disk_rate

        def proc():
            ra = ReadAhead(platform, asu, [nbytes] * 6, depth=4)
            for _ in range(6):
                yield ra.wait_next()
                # CPU work comparable to the transfer time.
                yield from asu.cpu.execute(cycles=per_block * asu.cpu.clock_hz)

        platform.spawn(proc())
        platform.sim.run()
        # With depth 4 the disk never starves: its busy time is 6 transfers
        # inside a makespan of roughly max(disk, cpu) + one-block skew.
        assert asu.disk.busy.intervals.total_busy == pytest.approx(6 * per_block)
        assert platform.sim.now < 7.5 * per_block

    def test_exhausted_raises(self, platform):
        asu = platform.asus[0]

        def proc():
            ra = ReadAhead(platform, asu, [128], depth=1)
            yield ra.wait_next()
            assert ra.exhausted
            with pytest.raises(RuntimeError, match="exhausted"):
                ra.wait_next()

        platform.spawn(proc())
        platform.sim.run()

    def test_empty_sizes(self, platform):
        ra = ReadAhead(platform, platform.asus[0], [])
        assert ra.exhausted

    def test_bad_depth(self, platform):
        with pytest.raises(ValueError):
            ReadAhead(platform, platform.asus[0], [128], depth=0)
