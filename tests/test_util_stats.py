"""Tests for online statistics and interval accumulators."""


import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import IntervalAccumulator, OnlineStats, TimeSeries


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.mean == 0.0 and s.variance == 0.0
        assert s.min == 0.0 and s.max == 0.0

    def test_known_values(self):
        s = OnlineStats()
        for x in [1.0, 2.0, 3.0, 4.0]:
            s.add(x)
        assert s.mean == pytest.approx(2.5)
        assert s.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert s.min == 1.0 and s.max == 4.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_matches_numpy(self, xs):
        s = OnlineStats()
        for x in xs:
            s.add(x)
        assert s.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-9)
        assert s.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-6)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    def test_merge_equals_sequential(self, xs, ys):
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        for x in xs:
            a.add(x)
            c.add(x)
        for y in ys:
            b.add(y)
            c.add(y)
        m = a.merge(b)
        assert m.n == c.n
        assert m.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-9)
        assert m.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-6)
        assert m.min == c.min and m.max == c.max

    def test_merge_with_empty(self):
        a = OnlineStats()
        a.add(5.0)
        m = a.merge(OnlineStats())
        assert m.n == 1 and m.mean == 5.0


class TestIntervalAccumulator:
    def test_basic_busy(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 1.0)
        acc.add(2.0, 3.0)
        assert acc.total_busy == pytest.approx(2.0)
        assert acc.busy_in(0.0, 4.0) == pytest.approx(2.0)

    def test_window_clipping(self):
        acc = IntervalAccumulator()
        acc.add(1.0, 3.0)
        assert acc.busy_in(0.0, 2.0) == pytest.approx(1.0)
        assert acc.busy_in(2.0, 4.0) == pytest.approx(1.0)
        assert acc.busy_in(1.5, 2.5) == pytest.approx(1.0)

    def test_out_of_order_rejected(self):
        acc = IntervalAccumulator()
        acc.add(2.0, 3.0)
        with pytest.raises(ValueError):
            acc.add(1.0, 1.5)

    def test_negative_interval_rejected(self):
        acc = IntervalAccumulator()
        with pytest.raises(ValueError):
            acc.add(2.0, 1.0)

    def test_empty_window(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 1.0)
        assert acc.busy_in(1.0, 1.0) == 0.0
        assert acc.utilization(1.0, 1.0) == 0.0

    def test_utilization(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 0.5)
        assert acc.utilization(0.0, 1.0) == pytest.approx(0.5)

    def test_utilization_series(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 1.0)  # busy for first half of [0,2)
        series = acc.utilization_series(t_end=2.0, dt=1.0)
        assert len(series) == 2
        (t0, u0), (t1, u1) = series
        assert t0 == pytest.approx(0.5) and u0 == pytest.approx(1.0)
        assert t1 == pytest.approx(1.5) and u1 == pytest.approx(0.0)

    def test_busy_in_overlapping_intervals_not_skipped(self):
        # Regression: the backward scan used to break at the FIRST interval
        # ending before the window, skipping earlier LONGER intervals that
        # still overlap.  Here (3, 4) ends at the window start, but (0, 5)
        # reaches past it.
        acc = IntervalAccumulator()
        acc.add(0.0, 5.0)
        acc.add(1.0, 2.0)
        acc.add(3.0, 4.0)
        # Pre-fix this returned 0.0: the scan hit (3, 4), saw end <= w0 and
        # start <= w0, and broke out before examining (0, 5).
        assert acc.busy_in(4.0, 6.0) == pytest.approx(1.0)
        # Full-window sum still equals the (overlap-counting) total.
        assert acc.busy_in(0.0, 6.0) == pytest.approx(acc.total_busy)

    def test_busy_in_overlap_counts_each_interval(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 4.0)
        acc.add(1.0, 2.0)
        assert acc.total_busy == pytest.approx(5.0)
        assert acc.busy_in(0.0, 4.0) == pytest.approx(5.0)
        assert acc.busy_in(1.0, 2.0) == pytest.approx(2.0)

    def test_insert_out_of_order(self):
        acc = IntervalAccumulator()
        acc.add(2.0, 3.0)
        acc.insert(0.0, 3.0)  # starts before the last interval: spliced in
        assert acc.starts == [0.0, 2.0]
        assert acc.total_busy == pytest.approx(4.0)
        assert acc.busy_in(2.5, 4.0) == pytest.approx(1.0)
        assert acc.busy_in(0.0, 1.0) == pytest.approx(1.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 10)),
            min_size=1,
            max_size=30,
        )
    )
    def test_insert_any_order_matches_sorted_add(self, spans):
        shuffled = IntervalAccumulator()
        for start, dur in spans:
            shuffled.insert(start, start + dur)
        ordered = IntervalAccumulator()
        for start, dur in sorted(spans):
            ordered.add(start, start + dur)
        assert shuffled.total_busy == pytest.approx(ordered.total_busy)
        hi = max(s + d for s, d in spans) + 1.0
        for w0, w1 in [(0.0, hi), (hi / 3, 2 * hi / 3), (hi / 2, hi)]:
            assert shuffled.busy_in(w0, w1) == pytest.approx(ordered.busy_in(w0, w1))

    def test_utilization_series_adversarial_dt(self):
        # Regression: accumulating t += dt drifts; 0.3 * 3 < 0.9 in floats,
        # so the old loop emitted a fourth, near-empty duplicate window.
        acc = IntervalAccumulator()
        acc.add(0.0, 0.9)
        series = acc.utilization_series(t_end=0.9, dt=0.3)
        assert len(series) == 3
        assert all(u == pytest.approx(1.0) for _t, u in series)

    def test_utilization_series_long_run_window_count(self):
        # Pre-fix, 10000 accumulated additions of 0.1 undershot 1000.0 and
        # appended an extra window.
        acc = IntervalAccumulator()
        series = acc.utilization_series(t_end=1000.0, dt=0.1)
        assert len(series) == 10000

    def test_utilization_series_partial_final_window(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 2.5)
        series = acc.utilization_series(t_end=2.5, dt=1.0)
        assert len(series) == 3
        assert series[-1][0] == pytest.approx(2.25)  # midpoint of [2.0, 2.5)

    def test_utilization_series_bad_dt(self):
        with pytest.raises(ValueError):
            IntervalAccumulator().utilization_series(t_end=1.0, dt=0.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 10)),
            min_size=1,
            max_size=30,
        )
    )
    def test_busy_in_total_window_equals_total(self, spans):
        # Build sorted, possibly overlapping-free intervals.
        acc = IntervalAccumulator()
        t = 0.0
        for gap, dur in spans:
            start = t + gap
            acc.add(start, start + dur)
            t = start
        end = max(acc.ends) + 1.0
        assert acc.busy_in(0.0, end) == pytest.approx(acc.total_busy, rel=1e-9, abs=1e-9)


class TestTimeSeries:
    def test_append_and_lookup(self):
        ts = TimeSeries()
        ts.append(0.0, 1.0)
        ts.append(1.0, 2.0)
        assert ts.value_at(0.5) == 1.0
        assert ts.value_at(1.0) == 2.0
        assert ts.value_at(-1.0) == 0.0
        assert ts.last() == 2.0
        assert len(ts) == 2

    def test_time_order_enforced(self):
        ts = TimeSeries()
        ts.append(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 2.0)

    def test_empty_last(self):
        assert TimeSeries().last() == 0.0
