"""Tests for repro.resilience.chaos: the chaos soak harness and its CLI.

Small record counts keep the soak fast; the harness itself is deterministic,
so every assertion here is exact (no flaky tolerance bands).
"""

import json

import pytest

from repro.__main__ import main
from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.faults import FaultPlan, crash_asu, drop_msg
from repro.resilience.chaos import (
    ResilientFilterScan,
    chaos_params,
    run_chaos,
)

N_SMALL = 1 << 12


class TestTransportValidation:
    def _job(self, **kw):
        params = chaos_params()
        cfg = DSMConfig.for_n(N_SMALL, alpha=8, gamma=16)
        return DsmSortJob(params, cfg, policy="sr", seed=0, **kw)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport must be"):
            self._job(transport="carrier-pigeon")

    def test_reliable_requires_a_fault_plan(self):
        with pytest.raises(ValueError, match="an empty one is fine"):
            self._job(transport="reliable")

    def test_lossy_plan_requires_reliable_transport(self):
        plan = FaultPlan([drop_msg(0.1, 0, 1, 0.05)])
        with pytest.raises(ValueError, match="transport='reliable'"):
            self._job(faults=plan)

    def test_crash_only_plan_still_allowed_on_direct(self):
        # Fail-stop recovery predates the reliable transport and must keep
        # working without it.
        self._job(faults=FaultPlan([crash_asu(0.5, 1)]))

    def test_deadline_requires_fault_mode(self):
        with pytest.raises(ValueError, match="deadline"):
            self._job().run_pass1(deadline=1.0)


class TestResilientFilterScan:
    def test_fault_free_exact_multiset(self):
        app = ResilientFilterScan(chaos_params(), N_SMALL, seed=0)
        res = app.run()
        assert res["completed"]
        assert list(res["keys"]) == list(app.expected_keys())
        assert res["n_degraded_blocks"] == 0

    def test_exact_multiset_under_drop_window(self):
        params = chaos_params()
        base = ResilientFilterScan(params, N_SMALL, seed=0)
        t0 = base.run()["makespan"]
        # Fragment traffic is front-loaded, so the window must open at t=0
        # to catch first transmissions (retries then land after it closes).
        plan = FaultPlan(
            [drop_msg(0.0, h, d, 0.5 * t0) for h in range(2) for d in range(4)]
        )
        app = ResilientFilterScan(params, N_SMALL, seed=0, faults=plan)
        res = app.run(deadline=12.0 * t0)
        assert res["completed"]
        assert list(res["keys"]) == list(app.expected_keys())
        assert res["channel_stats"]["n_retransmits"] > 0


class TestRunChaos:
    def test_small_soak_all_invariants_hold(self):
        report = run_chaos(seeds=2, n_records=N_SMALL, progress=None)
        assert len(report.cases) == 4  # 2 seeds x 2 apps
        assert report.violations() == []
        assert report.ok
        for case in report.cases:
            assert case["ok"] and all(case["invariants"].values())
        # At least one case actually exercised the lossy machinery —
        # otherwise the soak proves nothing.
        assert any(c["n_retransmits"] > 0 for c in report.cases)

    def test_negative_control_loses_records(self):
        report = run_chaos(
            seeds=[0], apps=("dsmsort",), n_records=N_SMALL, progress=None
        )
        nc = report.negative_control
        assert nc is not None and nc["ok"]
        assert not nc["completed"] and nc["lost_records"] > 0
        assert nc["n_durable"] + nc["lost_records"] == nc["n_total"]

    def test_report_is_byte_identical_across_runs(self):
        kw = dict(seeds=[0, 5], apps=("filterscan",), n_records=N_SMALL,
                  negative_control=False)
        a = run_chaos(**kw)
        b = run_chaos(**kw)
        assert a.to_json() == b.to_json()

    def test_report_round_trips_through_json(self):
        report = run_chaos(
            seeds=[0], apps=("filterscan",), n_records=N_SMALL,
            negative_control=False,
        )
        doc = json.loads(report.to_json())
        assert doc["schema_version"] == report.schema_version
        assert doc["apps"] == ["filterscan"]
        assert doc["seeds"] == [0]
        assert len(doc["cases"]) == 1
        assert doc["cases"][0]["invariants"]["exact_multiset"] is True

    def test_violation_flips_report_not_ok(self):
        # An absurd amplification bound (just above 1.0) cannot hold under a
        # drop-heavy schedule: the report must say so, loudly.
        report = run_chaos(
            seeds=[0], apps=("dsmsort",), n_records=N_SMALL,
            amp_bound=1.0001, negative_control=False,
        )
        assert not report.ok
        assert any("amplification_bounded" in v for v in report.violations())
        assert "FAIL" in report.render()

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos app"):
            run_chaos(seeds=1, apps=("sortbench",), n_records=N_SMALL)


class TestChaosCli:
    def test_cli_writes_report_and_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "chaos.json"
        rc = main([
            "chaos", "--n", "12", "--seeds", "1", "--out", str(out),
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "PASS" in stdout and "negative control" in stdout
        doc = json.loads(out.read_text())
        assert {c["app"] for c in doc["cases"]} == {"dsmsort", "filterscan"}
        assert doc["negative_control"]["ok"] is True

    def test_cli_exits_nonzero_on_violation(self, capsys, tmp_path):
        out = tmp_path / "chaos.json"
        rc = main([
            "chaos", "--n", "12", "--seeds", "1", "--apps", "dsmsort",
            "--amp-bound", "1.0001", "--no-negative-control",
            "--out", str(out),
        ])
        assert rc == 1
        assert "VIOLATION" in capsys.readouterr().out


class TestRecoveryChaosApps:
    def test_recovery_and_straggler_apps_hold_invariants(self):
        report = run_chaos(
            seeds=[0], apps=("recovery", "straggler"), n_records=N_SMALL,
            negative_control=False, progress=None,
        )
        assert report.ok, report.violations()
        by_app = {c["app"]: c for c in report.cases}
        rec = by_app["recovery"]
        assert rec["invariants"]["byte_identical"]
        assert rec["n_crashes"] >= 1 and rec["invariants"]["no_duplicate_coverage"]
        st = by_app["straggler"]
        assert st["invariants"]["sorted_permutation"]
        assert st["speedup"] >= 1.0
        # the report machinery digests the new apps
        assert "recovery" in report.render()
        json.loads(report.to_json())

    def test_default_apps_tuple_unchanged(self):
        # Existing committed chaos reports must stay byte-identical: the new
        # apps are opt-in, never part of the default sweep.
        import inspect

        sig = inspect.signature(run_chaos)
        assert sig.parameters["apps"].default == ("dsmsort", "filterscan")
