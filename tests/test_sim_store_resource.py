"""Tests for stores (channels) and resources."""

import pytest

from repro.sim import PriorityStore, Resource, SimError, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)

        def proc():
            yield store.put("x")
            item = yield store.get()
            return item

        p = sim.process(proc())
        sim.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        order = []

        def consumer():
            item = yield store.get()
            order.append(("got", item, sim.now))

        def producer():
            yield sim.timeout(3.0)
            yield store.put("late")
            order.append(("put", sim.now))

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert ("got", "late", 3.0) in order

    def test_capacity_backpressure(self, sim):
        store = Store(sim, capacity=1)
        times = []

        def producer():
            for i in range(3):
                yield store.put(i)
                times.append(sim.now)

        def consumer():
            for _ in range(3):
                yield sim.timeout(2.0)
                yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        # First put immediate; subsequent puts wait for consumer to drain.
        assert times[0] == 0.0
        assert times[1] == pytest.approx(2.0)
        assert times[2] == pytest.approx(4.0)

    def test_fifo_order(self, sim):
        store = Store(sim)
        got = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_multiple_getters_served_in_order(self, sim):
        store = Store(sim)
        got = []

        def getter(name):
            item = yield store.get()
            got.append((name, item))

        def producer():
            yield sim.timeout(1.0)
            yield store.put("a")
            yield store.put("b")

        sim.process(getter("g1"))
        sim.process(getter("g2"))
        sim.process(producer())
        sim.run()
        assert got == [("g1", "a"), ("g2", "b")]

    def test_try_get(self, sim):
        store = Store(sim)

        def proc():
            yield store.put("x")
            assert store.try_get() == "x"
            assert store.try_get() is None

        sim.process(proc())
        sim.run()

    def test_try_get_with_blocked_getters_rejected(self, sim):
        store = Store(sim)

        def getter():
            yield store.get()

        def checker():
            yield sim.timeout(1.0)
            with pytest.raises(SimError):
                store.try_get()
            yield store.put("release")

        sim.process(getter())
        sim.process(checker())
        sim.run()

    def test_len_and_counters(self, sim):
        store = Store(sim)

        def proc():
            yield store.put(1)
            yield store.put(2)
            assert len(store) == 2
            yield store.get()
            assert store.n_put == 2
            assert store.n_got == 1

        sim.process(proc())
        sim.run()

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(SimError):
            Store(sim, capacity=0)


class TestPriorityStore:
    def test_smallest_first(self, sim):
        store = PriorityStore(sim)
        got = []

        def proc():
            yield store.put(3)
            yield store.put(1)
            yield store.put(2)
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(proc())
        sim.run()
        assert got == [1, 2, 3]

    def test_tie_insertion_order(self, sim):
        store = PriorityStore(sim)
        got = []

        def proc():
            yield store.put((1, "first"))
            yield store.put((1, "second"))
            for _ in range(2):
                item = yield store.get()
                got.append(item[1])

        sim.process(proc())
        sim.run()
        assert got == ["first", "second"]


class TestResource:
    def test_exclusive_serialization(self, sim):
        res = Resource(sim, capacity=1)
        spans = []

        def worker(name, hold):
            req = res.request()
            yield req
            start = sim.now
            yield sim.timeout(hold)
            res.release(req)
            spans.append((name, start, sim.now))

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 3.0)]

    def test_capacity_two_overlaps(self, sim):
        res = Resource(sim, capacity=2)
        ends = []

        def worker(hold):
            with res.request() as req:
                yield req
                yield sim.timeout(hold)
            ends.append(sim.now)

        sim.process(worker(1.0))
        sim.process(worker(1.0))
        sim.run()
        assert ends == [1.0, 1.0]

    def test_release_ungranted_cancels(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(5.0)
            res.release(req)

        def canceller():
            req = res.request()  # queued behind holder
            yield sim.timeout(1.0)
            res.release(req)  # cancel while queued
            return "cancelled"

        sim.process(holder())
        p = sim.process(canceller())
        sim.run()
        assert p.value == "cancelled"

    def test_release_foreign_request_rejected(self, sim):
        res = Resource(sim, capacity=1)

        def proc():
            req = res.request()
            yield req
            res.release(req)
            with pytest.raises(SimError):
                res.release(req)

        sim.process(proc())
        sim.run()

    def test_bad_capacity(self, sim):
        with pytest.raises(SimError):
            Resource(sim, capacity=0)

    def test_count(self, sim):
        res = Resource(sim, capacity=3)

        def proc():
            reqs = [res.request() for _ in range(2)]
            for r in reqs:
                yield r
            assert res.count == 2
            for r in reqs:
                res.release(r)
            assert res.count == 0

        sim.process(proc())
        sim.run()
