"""End-to-end serving tests: determinism of the ServeReport, fairness and
starvation behaviour at saturation, and the `repro serve` CLI."""

import json

import pytest

from repro.__main__ import main
from repro.sched import (
    JobTemplate,
    Quota,
    ResourceNeed,
    Tenant,
    jain_index,
    run_serve,
)

# a compact sweep: well under / well past saturation, all three policies
LOADS = (0.6, 3.0)
N_JOBS = 40


@pytest.fixture(scope="module")
def report():
    return run_serve(n_jobs=N_JOBS, load_factors=LOADS)


class TestDeterminism:
    def test_same_seed_byte_identical(self, report):
        again = run_serve(n_jobs=N_JOBS, load_factors=LOADS)
        assert report.to_json() == again.to_json()

    def test_different_seed_differs(self, report):
        other = run_serve(n_jobs=N_JOBS, load_factors=LOADS, seed=7)
        assert report.to_json() != other.to_json()

    def test_json_round_trips(self, report):
        d = json.loads(report.to_json())
        assert d["schema_version"] == report.schema_version
        assert len(d["cells"]) == len(LOADS) * 3


class TestServeOutcome:
    def test_all_jobs_accounted(self, report):
        for c in report.cells:
            assert (
                c["n_completed"] + c["n_rejected"] + c["n_failed"] == c["n_jobs"]
            ), c["policy"]

    def test_under_load_everything_completes(self, report):
        for c in report.cells:
            if c["load_factor"] < 1.0:
                assert c["n_completed"] == c["n_jobs"]
                assert c["n_rejected"] == 0

    def test_saturation_queues_grow(self, report):
        lo = report.cell("fifo", report.cells[0]["rate"])
        hi = [c for c in report.cells
              if c["policy"] == "fifo" and c["load_factor"] == max(LOADS)][0]
        assert hi["queue_depth_p90"] > lo["queue_depth_p90"]

    def test_fair_beats_fifo_on_jain_at_saturation(self, report):
        """The tentpole's headline: share-weighted DRR keeps goodput
        proportional to shares when a flooding tenant saturates the
        platform; FIFO drains the flood in arrival order."""
        top = max(LOADS)
        fifo = [c for c in report.cells
                if c["policy"] == "fifo" and c["load_factor"] == top][0]
        fair = [c for c in report.cells
                if c["policy"] == "fair" and c["load_factor"] == top][0]
        assert fair["jain_fairness"] > fifo["jain_fairness"] + 0.05

    def test_priority_protects_slo_tenant(self, report):
        """webapp (priority 2, tight SLO) should meet its deadlines under
        the priority policy even at saturation."""
        top = max(LOADS)
        prio = [c for c in report.cells
                if c["policy"] == "priority" and c["load_factor"] == top][0]
        assert prio["slo_attainment"] is not None
        assert prio["slo_attainment"] >= 0.9


class TestStarvation:
    def test_fair_share_runs_every_admitted_tenant(self):
        """Under a 10:1 flood, fair share still eventually completes every
        admitted quiet-tenant job — nobody starves."""
        tenants = [
            Tenant("quiet", share=1.0, quota=Quota(max_queued=16, max_running=2)),
            Tenant("flood", share=1.0, quota=Quota(max_queued=64, max_running=4)),
        ]
        need = ResourceNeed(n_asus=2, n_hosts=1)
        mix = [
            JobTemplate("quiet-sort", "quiet", "dsmsort", 1024, need=need,
                        weight=1.0),
            JobTemplate("flood-scan", "flood", "filterscan", 4096, need=need,
                        weight=10.0),
        ]
        r = run_serve(
            tenants=tenants, mix=mix, policies=("fair",), load_factors=(4.0,),
            n_jobs=60,
        )
        cell = r.cells[0]
        for name, t in cell["per_tenant"].items():
            admitted = t["submitted"] - t["rejected"]
            if admitted > 0:
                assert t["completed"] == admitted, f"{name} starved"

    def test_priority_aging_prevents_starvation(self):
        """Low-priority work still completes under a high-priority flood
        because waiting raises effective priority."""
        tenants = [
            Tenant("low", share=1.0, quota=Quota(max_queued=16, max_running=2)),
            Tenant("high", share=1.0, quota=Quota(max_queued=64, max_running=4)),
        ]
        need = ResourceNeed(n_asus=2, n_hosts=1)
        mix = [
            JobTemplate("low-scan", "low", "filterscan", 2048, need=need,
                        priority=0, weight=1.0),
            JobTemplate("high-scan", "high", "filterscan", 4096, need=need,
                        priority=5, weight=10.0),
        ]
        r = run_serve(
            tenants=tenants, mix=mix, policies=("priority",),
            load_factors=(4.0,), n_jobs=60,
        )
        t = r.cells[0]["per_tenant"]["low"]
        assert t["completed"] >= t["submitted"] - t["rejected"] - 1


class TestJainIndex:
    def test_uniform_is_one(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_monopoly_is_one_over_n(self):
        assert jain_index([9.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


class TestServeCli:
    def test_cli_runs_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        rc = main([
            "serve", "--jobs", "12", "--loads", "0.6,2.5",
            "--policies", "fifo,fair", "--out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "PASS" in text and "jain" in text
        payload = json.loads(out.read_text())
        assert len(payload["cells"]) == 4

    def test_cli_rejects_bad_loads(self, capsys):
        assert main(["serve", "--loads", "fast"]) == 2
        assert main(["serve", "--loads", "-1.0"]) == 2

    def test_cli_rejects_bad_policy(self, capsys):
        assert main(["serve", "--policies", "lottery"]) == 2
