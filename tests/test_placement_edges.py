"""Edge cases for Placement.migrate_off / PlacementSolver.repair.

The happy paths (least-loaded survivor choice, duplicate-replica drop,
repair-then-revalidate) live in tests/test_faults.py; these pin the failure
edges and the quarantine workflow the fault injector leans on.
"""

import pytest

from repro.core.placement import Placement, PlacementSolver
from repro.emulator.params import SystemParams
from repro.functors import (
    BlockSortFunctor,
    Dataflow,
    DistributeFunctor,
    FunctorError,
    MergeFunctor,
)


def small_params(**over):
    base = dict(n_hosts=2, n_asus=4)
    base.update(over)
    return SystemParams(**base)


def sort_graph():
    g = Dataflow()
    g.add_stage("distribute", DistributeFunctor.uniform(16), est_records=1000)
    g.add_stage(
        "blocksort", BlockSortFunctor(1024), replicas=2, est_records=1000
    )
    g.add_stage("merge", MergeFunctor(8), est_records=1000)
    g.connect(Dataflow.SOURCE, "distribute", kind="set", est_records=1000)
    g.connect("distribute", "blocksort", kind="set", est_records=1000)
    g.connect("blocksort", "merge", kind="set", est_records=1000)
    g.connect("merge", Dataflow.SINK, kind="stream", est_records=1000)
    return g


class TestMigrateOffEdges:
    def test_unknown_node_class(self):
        p = Placement()
        p.assign("scan", "asu", [0])
        with pytest.raises(FunctorError, match="unknown node class"):
            p.migrate_off("disk", 0, alive=[1])

    def test_failed_node_hosting_nothing_is_a_noop(self):
        p = Placement()
        p.assign("scan", "asu", [1])
        p.assign("agg", "host", [0])
        moves = p.migrate_off("asu", 0, alive=[1, 2])
        assert moves == []
        assert p.of("scan").instances == [1]
        assert p.of("agg").instances == [0]

    def test_alive_list_containing_only_the_failed_node(self):
        p = Placement()
        p.assign("scan", "asu", [0])
        with pytest.raises(FunctorError, match="no surviving"):
            p.migrate_off("asu", 0, alive=[0])

    def test_stage_cannot_silently_vanish(self):
        # Cascading failures shrink the replica set one drop at a time; the
        # final failure hits the no-survivor guard, never an empty stage.
        p = Placement()
        p.assign("scan", "asu", [0, 1])
        assert p.migrate_off("asu", 0, alive=[1]) == [("scan", 0, -1)]
        assert p.of("scan").instances == [1]
        with pytest.raises(FunctorError, match="no surviving"):
            p.migrate_off("asu", 1, alive=[1])
        # The placement is untouched by the refused migration.
        assert p.of("scan").instances == [1]

    def test_ties_break_to_lowest_index(self):
        p = Placement()
        p.assign("scan", "asu", [0])
        moves = p.migrate_off("asu", 0, alive=[0, 3, 2])
        # survivors 2 and 3 both hold zero replicas; 2 wins deterministically
        assert moves == [("scan", 0, 2)]

    def test_host_class_migration(self):
        p = Placement()
        p.assign("merge", "host", [0])
        p.assign("scan", "asu", [0])
        moves = p.migrate_off("host", 0, alive=[0, 1])
        assert moves == [("merge", 0, 1)]
        # The ASU assignment of the same index is untouched.
        assert p.of("scan").instances == [0]


class TestSolverRepairEdges:
    def test_repair_defaults_alive_to_whole_class(self):
        g = sort_graph()
        p = Placement()
        p.assign("distribute", "asu", [3])
        p.assign("blocksort", "host", [0, 1])
        p.assign("merge", "host", [1])
        solver = PlacementSolver(small_params())
        moves = solver.repair(g, p, "asu", 3)
        assert moves == [("distribute", 3, 0)]
        solver.validate(g, p)

    def test_repair_rejects_out_of_range_survivor(self):
        # A bogus alive list migrates, then re-validation catches it: the
        # placement never escapes repair() in a state the platform rejects.
        g = sort_graph()
        p = Placement()
        p.assign("distribute", "asu", [0])
        p.assign("blocksort", "host", [0, 1])
        p.assign("merge", "host", [1])
        solver = PlacementSolver(small_params())
        with pytest.raises(FunctorError, match="out of range"):
            solver.repair(g, p, "asu", 0, alive=[7])

    def test_repair_around_quarantine_then_cleared(self):
        # Quarantine = exclude from alive. The displaced stage must land on
        # the non-quarantined survivor; once the quarantine clears, a later
        # repair may use the node again.
        g = sort_graph()
        p = Placement()
        p.assign("distribute", "asu", [0])
        p.assign("blocksort", "host", [0, 1])
        p.assign("merge", "host", [1])
        solver = PlacementSolver(small_params())
        # asu1 quarantined: survivors are 2 and 3 only
        moves = solver.repair(g, p, "asu", 0, alive=[2, 3])
        assert moves == [("distribute", 0, 2)]
        # quarantine cleared: asu1 is back in the candidate set and wins the
        # least-loaded tie at the lowest index
        moves = solver.repair(g, p, "asu", 2, alive=[1, 3])
        assert moves == [("distribute", 2, 1)]
        solver.validate(g, p)

    def test_repair_of_replicated_stage_keeps_instances_distinct(self):
        g = sort_graph()
        p = Placement()
        p.assign("distribute", "asu", [0])
        p.assign("blocksort", "host", [0, 1])
        p.assign("merge", "host", [0])
        solver = PlacementSolver(small_params())
        # host0 dies; blocksort's displaced replica cannot double up on
        # host1 (already a replica), so it is dropped, while merge moves.
        moves = solver.repair(g, p, "host", 0)
        assert ("blocksort", 0, -1) in moves
        assert ("merge", 0, 1) in moves
        assert p.of("blocksort").instances == [1]
        solver.validate(g, p)
