"""End-to-end coverage for TimingMode.MEASURED — the paper's methodology.

In measured mode the emulator wall-clocks every execution segment with the
fine-grained counter and scales by the emulated processor's relative speed
(§5).  Results are machine-dependent, so these tests check structure, not
absolute values: segments are charged, makespans are positive, the ratio of
host to ASU charge reflects the clock gap, and the data path stays correct.
"""


from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.emulator import SystemParams, TimingMode
from repro.emulator.cpu import Cpu
from repro.sim import Simulator


class TestMeasuredCpu:
    def test_same_fn_slower_on_slower_cpu(self):
        params = SystemParams(
            timing_mode=TimingMode.MEASURED, measured_reference_hz=1e9
        )
        def work():
            return sum(range(50_000))

        def proc(sim, cpu, out):
            t0 = sim.now
            yield from cpu.execute(fn=work)
            out.append(sim.now - t0)

        # Run serially so measurements do not interleave.
        times_fast: list = []
        times_slow: list = []
        sim = Simulator()
        fast = Cpu(sim, clock_hz=1e9, params=params, name="fast")
        sim.process(proc(sim, fast, times_fast))
        sim.run()
        sim2 = Simulator()
        slow = Cpu(sim2, clock_hz=1e8, params=params, name="slow")
        sim2.process(proc(sim2, slow, times_slow))
        sim2.run()
        # 10x slower clock => roughly 10x the virtual time (wall-time noise
        # allows a broad band).
        assert times_slow[0] > 3 * times_fast[0]

    def test_cycles_ignored_in_favor_of_measurement(self):
        params = SystemParams(
            timing_mode=TimingMode.MEASURED, measured_reference_hz=1e9
        )
        sim = Simulator()
        cpu = Cpu(sim, clock_hz=1e9, params=params)

        def proc():
            # Declared cycles are overridden by the measured wall time.
            yield from cpu.execute(cycles=1e12, fn=lambda: None)

        sim.process(proc())
        sim.run()
        assert sim.now < 1.0  # 1e12 declared cycles would have been 1000 s


class TestMeasuredDsmSort:
    def test_end_to_end_sorts_under_measured_timing(self):
        params = SystemParams(
            n_hosts=1,
            n_asus=4,
            timing_mode=TimingMode.MEASURED,
            block_records=1024,
        )
        n = 1 << 13
        cfg = DSMConfig.for_n(n, alpha=8, gamma=8)
        job = DsmSortJob(params, cfg, seed=9)
        res = job.run_pass1()
        assert res.makespan > 0
        job.run_pass2()
        job.verify()

    def test_asus_charged_more_virtual_time_than_host_per_record(self):
        params = SystemParams(
            n_hosts=1, n_asus=2,
            timing_mode=TimingMode.MEASURED, block_records=512,
        )
        n = 1 << 12
        cfg = DSMConfig.for_n(n, alpha=64, gamma=8)
        job = DsmSortJob(params, cfg, seed=9)
        job.run_pass1()
        plat = job.platform
        # The same scaled-counter method ran on both sides; ASUs (1/8 clock)
        # must accumulate busy time even though they do less Python work.
        assert all(a.cpu.busy.total_busy > 0 for a in plat.asus)
        assert plat.hosts[0].cpu.busy.total_busy > 0
