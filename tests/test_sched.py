"""Tests for repro.sched: specs, admission, policies, leases, oracle,
scheduler event loop, preemption, and the job-id registry namespacing that
lets many jobs share one MetricsRegistry."""

import pytest

from repro.core.config import DSMConfig
from repro.dsmsort.runtime import DsmSortJob
from repro.metrics import MetricsRegistry
from repro.recovery import JobSupervisor, RecoverableSort, RestartBudget
from repro.resilience.chaos import chaos_params
from repro.sched import (
    AdmissionController,
    Arrival,
    FairSharePolicy,
    FifoPolicy,
    Job,
    JobSpec,
    JobState,
    JobTemplate,
    LeaseManager,
    OpenLoopWorkload,
    PriorityAgingPolicy,
    Quota,
    ResourceNeed,
    Scheduler,
    ServiceOracle,
    Tenant,
    make_policy,
    serve_params,
)


def _tenants():
    return {
        "a": Tenant("a", share=2.0, quota=Quota(max_queued=4, max_running=2)),
        "b": Tenant("b", share=1.0, quota=Quota(max_queued=4, max_running=2)),
    }


def _job(jid, tenant="a", arrival=0.0, app="filterscan", n=256, priority=0,
         need=None, deadline=None):
    spec = JobSpec(
        app=app, n_records=n, priority=priority, deadline=deadline,
        need=need if need is not None else ResourceNeed(n_asus=2, n_hosts=1),
    )
    return Job(job_id=jid, spec=spec, tenant=tenant, arrival_t=arrival,
               eligible_t=arrival)


# ---------------------------------------------------------------- validation
class TestValidation:
    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown app"):
            JobSpec(app="mapreduce", n_records=10)

    def test_negative_priority_rejected(self):
        with pytest.raises(ValueError, match="priority must be nonnegative"):
            JobSpec(app="dsmsort", n_records=10, priority=-1)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError, match="n_records"):
            JobSpec(app="dsmsort", n_records=0)
        with pytest.raises(ValueError, match="deadline"):
            JobSpec(app="dsmsort", n_records=10, deadline=0.0)
        with pytest.raises(ValueError, match="n_asus"):
            ResourceNeed(n_asus=0)

    def test_replication_validation(self):
        with pytest.raises(ValueError, match="replication must be >= 1"):
            ResourceNeed(replication=0)
        with pytest.raises(ValueError, match="exceeds the leased slice"):
            ResourceNeed(n_asus=2, replication=3)
        with pytest.raises(ValueError, match="does not support run replication"):
            JobSpec(
                app="filterscan", n_records=256,
                need=ResourceNeed(n_asus=2, replication=2),
            )
        # dsmsort is manifest-backed, so a replicated need is legal.
        JobSpec(
            app="dsmsort", n_records=256,
            need=ResourceNeed(n_asus=2, replication=2),
        )

    def test_nonpositive_quota_rejected(self):
        with pytest.raises(ValueError, match="max_queued"):
            Quota(max_queued=0)
        with pytest.raises(ValueError, match="max_running"):
            Quota(max_running=-3)

    def test_tenant_validation(self):
        with pytest.raises(ValueError, match="share"):
            Tenant("t", share=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            Tenant("")

    def test_zero_rate_generator_rejected(self):
        mix = [JobTemplate("t", "a", "filterscan", 128)]
        with pytest.raises(ValueError, match="rate must be positive"):
            OpenLoopWorkload(0.0, mix, 5)
        with pytest.raises(ValueError, match="rate must be positive"):
            OpenLoopWorkload(float("nan"), mix, 5)
        with pytest.raises(ValueError, match="n_jobs"):
            OpenLoopWorkload(1.0, mix, 0)
        with pytest.raises(ValueError, match="non-empty"):
            OpenLoopWorkload(1.0, [], 5)

    def test_duplicate_template_names_rejected(self):
        mix = [JobTemplate("t", "a", "filterscan", 128),
               JobTemplate("t", "b", "rtree", 64)]
        with pytest.raises(ValueError, match="duplicate template names"):
            OpenLoopWorkload(1.0, mix, 5)

    def test_template_weight_validation(self):
        with pytest.raises(ValueError, match="weight must be positive"):
            JobTemplate("t", "a", "filterscan", 128, weight=0.0)

    def test_policy_knob_validation(self):
        tenants = _tenants()
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("lottery", tenants)
        with pytest.raises(ValueError, match="quantum"):
            FairSharePolicy(tenants, quantum=0.0)
        with pytest.raises(ValueError, match="burst_rounds"):
            FairSharePolicy(tenants, burst_rounds=0.5)
        with pytest.raises(ValueError, match="age_rate"):
            PriorityAgingPolicy(tenants, age_rate=-0.1)
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionController(tenants, max_queue_depth=0)

    def test_restart_budget_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            RestartBudget(max_restarts=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RestartBudget(backoff_factor=0.5)
        with pytest.raises(ValueError, match="backoff"):
            RestartBudget(backoff0=-0.1)

    def test_routing_weights_validation(self):
        params = chaos_params()
        cfg = DSMConfig.for_n(512, alpha=4, gamma=8)
        with pytest.raises(ValueError, match="policy='weighted'"):
            DsmSortJob(params, cfg, policy="sr", routing_weights=[1.0, 1.0])
        with pytest.raises(ValueError, match="entries for"):
            DsmSortJob(params, cfg, policy="weighted", routing_weights=[1.0])
        with pytest.raises(ValueError, match="positive"):
            DsmSortJob(params, cfg, policy="weighted",
                       routing_weights=[1.0, -2.0])

    def test_scheduler_rejects_preempt_without_priority_policy(self):
        with pytest.raises(ValueError, match="preemption requires"):
            Scheduler(serve_params(), list(_tenants().values()), "fifo",
                      preempt=True)

    def test_scheduler_rejects_duplicate_tenants(self):
        t = Tenant("a")
        with pytest.raises(ValueError, match="duplicate tenant"):
            Scheduler(serve_params(), [t, t], "fifo")


# ----------------------------------------------------------------- admission
class TestAdmission:
    def test_unknown_tenant_rejected(self):
        adm = AdmissionController(_tenants())
        ok, reason = adm.admit(_job("j1", tenant="zz"), [], [])
        assert not ok and "unknown tenant" in reason

    def test_tenant_queue_quota(self):
        adm = AdmissionController(_tenants())
        queued = [_job(f"j{i}") for i in range(4)]
        ok, reason = adm.admit(_job("j9"), queued, [])
        assert not ok and "queue quota" in reason
        # another tenant still admits
        ok, _ = adm.admit(_job("j9", tenant="b"), queued, [])
        assert ok

    def test_global_queue_bound(self):
        adm = AdmissionController(_tenants(), max_queue_depth=2)
        queued = [_job("j0"), _job("j1", tenant="b")]
        ok, reason = adm.admit(_job("j2", tenant="b"), queued, [])
        assert not ok and "global queue full" in reason

    def test_may_run_cap(self):
        adm = AdmissionController(_tenants())
        running = [_job("j0"), _job("j1")]
        assert not adm.may_run(_job("j2"), running)
        assert adm.may_run(_job("j2", tenant="b"), running)


# ------------------------------------------------------------------ policies
class TestPolicies:
    def test_fifo_orders_by_arrival(self):
        pol = FifoPolicy(_tenants())
        jobs = [_job("j2", arrival=2.0), _job("j0", arrival=0.5),
                _job("j1", arrival=1.0)]
        assert pol.select(jobs, 3.0, lambda j: True).job_id == "j0"
        # unplaceable heads are skipped, not blocking
        assert pol.select(jobs, 3.0, lambda j: j.job_id != "j0").job_id == "j1"

    def test_fair_share_proportional(self):
        """2:1 shares -> tenant a is picked for ~2/3 of the work units."""
        pol = FairSharePolicy(_tenants(), quantum=256.0)
        served = {"a": 0.0, "b": 0.0}
        queue = [_job(f"a{i}", "a", arrival=i * 0.01) for i in range(40)]
        queue += [_job(f"b{i}", "b", arrival=i * 0.01) for i in range(40)]
        for _ in range(30):
            j = pol.select(queue, 1.0, lambda j: True)
            pol.charge(j, j.spec.cost_units)
            served[j.tenant] += j.spec.cost_units
            queue.remove(j)
        ratio = served["a"] / served["b"]
        assert 1.5 < ratio < 2.5, f"share ratio {ratio} not ~2"

    def test_fair_share_work_conserving(self):
        """A job costlier than the burst cap still runs (never deadlocks)."""
        pol = FairSharePolicy(_tenants(), quantum=1.0, burst_rounds=1.0)
        huge = _job("j0", n=100_000)
        assert pol.select([huge], 0.0, lambda j: True) is huge

    def test_priority_aging_overtakes(self):
        pol = PriorityAgingPolicy(_tenants(), age_rate=1.0)
        low_old = _job("j0", arrival=0.0, priority=0)
        high_new = _job("j1", arrival=9.0, priority=3)
        # at t=9 the low job has aged 9 units > 3
        assert pol.select([low_old, high_new], 9.0, lambda j: True) is low_old
        # with no aging, strict priority wins
        pol0 = PriorityAgingPolicy(_tenants(), age_rate=0.0)
        assert pol0.select([low_old, high_new], 9.0, lambda j: True) is high_new


# -------------------------------------------------------------------- leases
class TestLeases:
    def test_acquire_release_roundtrip(self):
        lm = LeaseManager(serve_params())
        need = ResourceNeed(n_asus=4, n_hosts=2)
        lease = lm.acquire(need, 0.0)
        assert lease.n_asus == 4 and lease.n_hosts == 2
        assert lm.free_asus == 2 and lm.free_hosts == 1
        assert not lm.can_place(ResourceNeed(n_asus=4, n_hosts=1))
        lm.release(lease, 5.0)
        assert lm.free_asus == 6 and lm.free_hosts == 3
        with pytest.raises(RuntimeError, match="double release"):
            lm.release(lease, 6.0)

    def test_wear_balanced_packing(self):
        """After a release, the next lease prefers the never-leased nodes."""
        lm = LeaseManager(serve_params())
        l1 = lm.acquire(ResourceNeed(n_asus=2, n_hosts=1), 0.0)
        lm.release(l1, 10.0)
        l2 = lm.acquire(ResourceNeed(n_asus=2, n_hosts=1), 10.0)
        assert set(l2.asus).isdisjoint(l1.asus)
        assert set(l2.hosts).isdisjoint(l1.hosts)

    def test_slice_params_shape(self):
        lm = LeaseManager(serve_params())
        lease = lm.acquire(ResourceNeed(n_asus=3, n_hosts=2), 0.0)
        sliced = lm.slice_params(lease)
        assert sliced.n_asus == 3 and sliced.n_hosts == 2

    def test_routing_hints_follow_wear(self):
        lm = LeaseManager(serve_params())
        # wear one host, then take a lease wide enough to include it
        # (narrow leases would just avoid the worn node — that IS the
        # wear balancing working)
        l1 = lm.acquire(ResourceNeed(n_asus=1, n_hosts=1), 0.0)
        lm.release(l1, 100.0)
        l2 = lm.acquire(ResourceNeed(n_asus=6, n_hosts=3), 100.0)
        hints = lm.routing_hints(l2)
        assert hints["policy"] == "weighted"
        # the worn host (weight 1.0) gets less than the fresh one (2.0)
        assert min(hints["weights"]) == 1.0 and max(hints["weights"]) == 2.0
        lm.release(l2, 100.0)
        # single-host leases have nothing to weight
        l3 = lm.acquire(ResourceNeed(n_asus=1, n_hosts=1), 100.0)
        assert lm.routing_hints(l3)["policy"] == "sr"

    def test_lease_metrics_exported(self):
        reg = MetricsRegistry()
        lm = LeaseManager(serve_params(), reg)
        lease = lm.acquire(ResourceNeed(n_asus=2, n_hosts=1), 0.0)
        lm.release(lease, 3.0)
        gv = reg.get("repro_sched_node_lease_seconds", node_class="asu")
        assert float(gv.values.sum()) == pytest.approx(6.0)
        assert reg.get("repro_sched_free_asus").value == 6.0


# -------------------------------------------------------------------- oracle
class TestOracle:
    def test_memoization(self):
        o = ServiceOracle()
        spec = JobSpec(app="filterscan", n_records=512)
        p = serve_params().with_(n_asus=2, n_hosts=1, host_clock_multipliers=None)
        t1 = o.makespan(spec, p)
        assert o.n_emulations == 1
        t2 = o.makespan(spec, p)
        assert t2 == t1 and o.n_emulations == 1

    def test_replicated_need_measures_separately(self):
        # The replication factor is part of the service identity: r=2 writes
        # every run twice, so it must not share a memo entry with r=1.
        o = ServiceOracle()
        p = serve_params().with_(n_asus=2, n_hosts=1, host_clock_multipliers=None)
        t1 = o.makespan(
            JobSpec(app="dsmsort", n_records=2048,
                    need=ResourceNeed(n_asus=2, replication=1)), p
        )
        t2 = o.makespan(
            JobSpec(app="dsmsort", n_records=2048,
                    need=ResourceNeed(n_asus=2, replication=2)), p
        )
        assert o.n_emulations == 2
        assert t2 > t1  # the replica writes cost real service time

    def test_hints_normalized_for_hint_blind_apps(self):
        """filterscan/rtree ignore routing hints, so distinct wear-derived
        hint values on an identical (spec, slice) must hit the same memo
        entry instead of re-emulating."""
        o = ServiceOracle()
        p = serve_params().with_(n_asus=2, n_hosts=1, host_clock_multipliers=None)
        for app in ("filterscan", "rtree"):
            spec = JobSpec(app=app, n_records=256)
            before = o.n_emulations
            t1 = o.makespan(spec, p, hints={"policy": "sr", "weights": None})
            t2 = o.makespan(
                spec, p, hints={"policy": "weighted", "weights": (1.0, 1.4)}
            )
            assert t2 == t1
            assert o.n_emulations == before + 1
        # dsmsort DOES consume hints: distinct weights are distinct keys
        p2 = serve_params().with_(n_asus=4, n_hosts=2, host_clock_multipliers=None)
        spec = JobSpec(app="dsmsort", n_records=1024)
        before = o.n_emulations
        o.makespan(spec, p2, hints={"policy": "sr", "weights": None})
        o.makespan(spec, p2, hints={"policy": "weighted", "weights": (1.0, 2.0)})
        assert o.n_emulations == before + 2

    def test_noncheckpointable_resume_rejected(self):
        o = ServiceOracle()
        spec = JobSpec(app="rtree", n_records=128)
        p = serve_params().with_(n_asus=2, n_hosts=1, host_clock_multipliers=None)
        with pytest.raises(ValueError, match="not checkpointable"):
            o.makespan(spec, p, crash_instants=(0.01,))

    def test_dsmsort_preempted_resume_measured(self):
        """A preempted sort's resume is shorter than a cold run (manifest
        progress survives), and the replayed result still verifies."""
        o = ServiceOracle()
        spec = JobSpec(app="dsmsort", n_records=1024)
        p = serve_params().with_(n_asus=2, n_hosts=1, host_clock_multipliers=None)
        cold = o.makespan(spec, p)
        resumed = o.makespan(spec, p, crash_instants=(0.6 * cold,))
        assert 0.0 < resumed < cold


# ----------------------------------------------------------------- scheduler
def _arrival(t, tenant, app="filterscan", n=512, priority=0, need=None,
             seed=0):
    spec = JobSpec(
        app=app, n_records=n, priority=priority, seed=seed,
        need=need if need is not None else ResourceNeed(n_asus=2, n_hosts=1),
    )
    return Arrival(t=t, spec=spec, tenant=tenant, template=f"{tenant}-{app}")


class TestScheduler:
    def test_accounting_invariant(self):
        sched = Scheduler(serve_params(), list(_tenants().values()), "fifo")
        arrivals = [_arrival(0.01 * i, "a" if i % 2 else "b") for i in range(8)]
        out = sched.run(arrivals)
        states = [j.state for j in out.jobs]
        assert states.count(JobState.DONE) == 8
        assert out.makespan > 0
        # every queue-depth sample was recorded at an event
        assert len(out.depth_samples) >= 8

    def test_oversize_need_rejected(self):
        sched = Scheduler(serve_params(), list(_tenants().values()), "fifo")
        big = _arrival(0.0, "a", need=ResourceNeed(n_asus=64, n_hosts=64))
        out = sched.run([big])
        assert out.jobs[0].state == JobState.REJECTED
        assert "exceeds fleet" in out.jobs[0].reason

    def test_backpressure_rejects_past_quota(self):
        tenants = [Tenant("a", quota=Quota(max_queued=2, max_running=1))]
        sched = Scheduler(serve_params(), tenants, "fifo")
        # 6 near-simultaneous arrivals, 1 running slot, 2 queue slots
        out = sched.run([_arrival(0.0001 * i, "a", n=2048) for i in range(6)])
        assert out.n_rejected > 0
        done = [j for j in out.jobs if j.state == JobState.DONE]
        rejected = [j for j in out.jobs if j.state == JobState.REJECTED]
        assert len(done) + len(rejected) == 6

    def test_priority_preempts_checkpointable(self):
        """A high-priority arrival evicts the running sort; the sort's
        progress survives (checkpoint-assisted) and both complete."""
        tenants = [Tenant("lo"), Tenant("hi")]
        fleet = serve_params()
        whole = ResourceNeed(n_asus=6, n_hosts=3)
        sort = _arrival(0.0, "lo", app="dsmsort", n=2048, priority=0, need=whole)
        probe = Scheduler(fleet, tenants, "fifo")
        t_sort = probe.run([sort]).makespan
        urgent = _arrival(0.5 * t_sort, "hi", app="rtree", n=128, priority=5,
                          need=whole)
        sched = Scheduler(fleet, tenants, "priority", preempt=True)
        out = sched.run([sort, urgent])
        by_id = {j.job_id: j for j in out.jobs}
        lo = [j for j in out.jobs if j.tenant == "lo"][0]
        hi = [j for j in out.jobs if j.tenant == "hi"][0]
        assert out.n_preempted == 1
        assert lo.n_preemptions == 1 and len(lo.crash_instants) == 1
        assert lo.state == JobState.DONE and hi.state == JobState.DONE
        assert hi.finish_t < lo.finish_t
        # the preempted sort did NOT restart from scratch: total occupancy
        # is less than two cold runs
        assert lo.occupied < 2 * t_sort
        assert by_id[lo.job_id].epoch == 1  # stale finish event invalidated

    def test_priority_kills_and_requeues_noncheckpointable(self):
        tenants = [Tenant("lo"), Tenant("hi")]
        fleet = serve_params()
        whole = ResourceNeed(n_asus=6, n_hosts=3)
        scan = _arrival(0.0, "lo", app="filterscan", n=4096, priority=0,
                        need=whole)
        probe = Scheduler(fleet, tenants, "fifo")
        t_scan = probe.run([scan]).makespan
        urgent = _arrival(0.5 * t_scan, "hi", app="rtree", n=128, priority=5,
                          need=whole)
        sched = Scheduler(fleet, tenants, "priority", preempt=True)
        out = sched.run([scan, urgent])
        lo = [j for j in out.jobs if j.tenant == "lo"][0]
        assert out.n_restarted == 1 and lo.n_restarts == 1
        assert lo.state == JobState.DONE
        # lost work is visible: occupancy exceeds one clean run
        assert lo.occupied > t_scan

    def test_preemption_no_livelock_under_heavy_aging(self):
        """Regression: with a large age_rate the evicted victim's aged
        effective priority exceeds the preemptor's, and open re-dispatch
        used to hand the freed slot straight back to the victim — evict,
        re-start, evict, forever at one instant.  Direct lease handoff to
        the preempting candidate must terminate and run the urgent job
        first."""
        tenants = [Tenant("lo"), Tenant("hi")]
        fleet = serve_params()
        whole = ResourceNeed(n_asus=6, n_hosts=3)
        sort = _arrival(0.0, "lo", app="dsmsort", n=2048, priority=0, need=whole)
        probe = Scheduler(fleet, tenants, "fifo")
        t_sort = probe.run([sort]).makespan
        urgent = _arrival(0.5 * t_sort, "hi", app="rtree", n=128, priority=5,
                          need=whole)
        sched = Scheduler(
            fleet, tenants, "priority", preempt=True,
            policy_kwargs={"age_rate": 1e6},
        )
        out = sched.run([sort, urgent])
        lo = [j for j in out.jobs if j.tenant == "lo"][0]
        hi = [j for j in out.jobs if j.tenant == "hi"][0]
        assert lo.state == JobState.DONE and hi.state == JobState.DONE
        assert out.n_preempted == 1 and lo.n_preemptions == 1
        # the urgent job took the freed slot at the preemption instant
        assert hi.first_start_t == pytest.approx(hi.arrival_t)
        assert hi.finish_t < lo.finish_t

    def test_lower_ranked_high_class_candidate_still_preempts(self):
        """Regression: when the top effective-priority candidate is an aged
        low-class job that cannot evict anyone, a lower-ranked high-class
        candidate must still get to preempt instead of waiting for an
        unrelated event."""
        tenants = [Tenant("mid"), Tenant("aged"), Tenant("hi")]
        fleet = serve_params()
        whole = ResourceNeed(n_asus=6, n_hosts=3)
        running = _arrival(0.0, "mid", app="dsmsort", n=2048, priority=2,
                           need=whole)
        probe = Scheduler(fleet, tenants, "fifo")
        t_run = probe.run([running]).makespan
        # class 0, queued from almost the start: by 0.5*t_run its aged
        # effective priority dwarfs the fresh class-5 arrival's...
        aged = _arrival(0.01 * t_run, "aged", app="filterscan", n=512,
                        priority=0, need=whole)
        # ...but it cannot evict the class-2 running job; the class-5 can.
        urgent = _arrival(0.5 * t_run, "hi", app="rtree", n=128, priority=5,
                          need=whole)
        sched = Scheduler(
            fleet, tenants, "priority", preempt=True,
            policy_kwargs={"age_rate": 1e6},
        )
        out = sched.run([running, aged, urgent])
        by_tenant = {j.tenant: j for j in out.jobs}
        assert all(j.state == JobState.DONE for j in out.jobs)
        assert out.n_preempted == 1
        assert by_tenant["mid"].n_preemptions == 1
        # the high class preempted at its arrival instant despite ranking
        # below the aged job on effective priority
        hi = by_tenant["hi"]
        assert hi.first_start_t == pytest.approx(hi.arrival_t)

    def test_restart_budget_exhaustion_fails_job(self):
        tenants = [Tenant("lo"), Tenant("hi")]
        fleet = serve_params()
        whole = ResourceNeed(n_asus=6, n_hosts=3)
        scan = _arrival(0.0, "lo", app="filterscan", n=8192, priority=0,
                        need=whole)
        probe = Scheduler(fleet, tenants, "fifo")
        t_scan = probe.run([scan]).makespan
        # a drumbeat of urgent jobs, spaced so the scan re-dispatches (from
        # scratch) between them and each one lands mid-segment again
        urgents = [
            _arrival((0.4 + 0.7 * i) * t_scan, "hi", app="rtree", n=128,
                     priority=5, need=whole, seed=i)
            for i in range(4)
        ]
        sched = Scheduler(
            fleet, tenants, "priority", preempt=True,
            restart_budget=RestartBudget(max_restarts=1, backoff0=1e-4,
                                         backoff_cap=1e-3),
        )
        out = sched.run([scan] + urgents)
        lo = [j for j in out.jobs if j.tenant == "lo"][0]
        assert lo.state == JobState.FAILED
        assert "restart budget exhausted" in lo.reason
        assert out.n_failed == 1

    def test_fifo_and_fair_identical_when_unsaturated(self):
        """Below saturation every policy serves everything promptly."""
        arrivals = [_arrival(0.5 * i, "a" if i % 2 else "b") for i in range(6)]
        outs = {}
        for pol in ("fifo", "fair"):
            sched = Scheduler(serve_params(), list(_tenants().values()), pol)
            outs[pol] = sched.run(arrivals)
        assert outs["fifo"].makespan == pytest.approx(outs["fair"].makespan)


# ------------------------------------------------- job-id metric namespacing
class TestJobNamespacing:
    def test_two_supervised_jobs_share_one_registry(self):
        """Regression: two supervised sorts metering into ONE registry used
        to clobber each other's LoadManager gauge vectors (the second job's
        constructor reset the shared series).  With job ids every instrument
        is namespaced and both jobs complete and verify."""
        shared = MetricsRegistry()
        params = chaos_params()
        cfg = DSMConfig.for_n(1024, alpha=8, gamma=8)
        sorts = {}
        for jid, seed in (("job-a", 0), ("job-b", 1)):
            s = RecoverableSort(
                params, cfg, seed=seed, job_id=jid,
                metrics_factory=lambda: shared,
            )
            sup = JobSupervisor(s, registry=shared)
            assert sup.job_id == jid  # inherited from the sort
            ref = RecoverableSort(params, cfg, seed=seed)
            t_ref = ref.attempt().makespan
            rep = sup.run(crashes=[0.5 * t_ref])
            assert rep.completed and rep.n_crashes == 1
            s.verify()
            sorts[jid] = s
        # namespaced instruments exist independently for both jobs
        for jid in ("job-a", "job-b"):
            gv = shared.get("repro_lm_routed_records_total", job=jid)
            assert gv is not None and float(gv.values.sum()) > 0
            att = shared.get("repro_supervisor_attempts_total", job=jid)
            assert att is not None and att.value == 2.0
            cr = shared.get("repro_supervisor_crashes_total", job=jid)
            assert cr is not None and cr.value == 1.0

    def test_no_job_label_without_job_id(self):
        """Single-job runs stay exactly as before: no job= label anywhere."""
        reg = MetricsRegistry()
        params = chaos_params()
        cfg = DSMConfig.for_n(512, alpha=4, gamma=8)
        job = DsmSortJob(params, cfg, seed=0, metrics=reg)
        job.run_pass1()
        job.run_pass2()
        job.verify()
        assert len(reg) > 0
        for inst in reg.instruments():
            assert "job" not in inst.labels, inst.key

    def test_dsmsort_job_label_applied(self):
        reg = MetricsRegistry()
        params = chaos_params()
        cfg = DSMConfig.for_n(512, alpha=4, gamma=8)
        job = DsmSortJob(params, cfg, seed=0, metrics=reg, job_id="x1")
        job.run_pass1()
        job.run_pass2()
        job.verify()
        assert reg.get("repro_lm_routed_records_total", job="x1") is not None
        # every instrument the job created carries its namespace
        labelled = [
            inst for inst in reg.instruments() if inst.labels.get("job") == "x1"
        ]
        assert labelled, "job-labelled instruments missing"
