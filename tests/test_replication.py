"""r-way run replication (repro.replica) wired through the FT DSM-Sort.

Covers the tentpole acceptance scenarios: promotion-based takeover (an ASU
kill at any instant completes with zero fragment replay AND zero run
re-emission when r >= 2, byte-identical to the uninterrupted reference),
the r=1 re-emission fallback, write policies, media-loss repair, the
checkpoint integration, and the typed UnrecoverableJobError dead ends.
"""

import numpy as np
import pytest

from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.faults import (
    FaultPlan,
    UnrecoverableJobError,
    crash_asu,
    crash_host,
    lose_replica,
)
from repro.recovery.checkpoint import RecoverableSort
from repro.recovery.supervisor import JobSupervisor, RestartBudget
from repro.replica import ReplicationConfig, ReplicationManager

N = 1 << 13
HB = dict(heartbeat_interval=0.002, heartbeat_timeout=0.008)


def small_params(**over):
    base = dict(n_hosts=2, n_asus=4)
    base.update(over)
    return SystemParams(**base)


def make_job(faults, replication, **over):
    params = over.pop("params", small_params())
    cfg = DSMConfig.for_n(N, alpha=8, gamma=16)
    defaults = dict(policy="sr", seed=3, faults=faults,
                    replication=replication, **HB)
    defaults.update(over)
    return DsmSortJob(params, cfg, **defaults)


def sort_once(faults, replication, **over):
    job = make_job(faults, replication, **over)
    r1 = job.run_pass1()
    job.run_pass2()
    job.verify()
    return job, r1, job.collected_output()


@pytest.fixture(scope="module")
def reference():
    """Uninterrupted replicated run: t0 + output bytes (shared per module)."""
    _job, r1, out = sort_once(FaultPlan([]), ReplicationConfig(r=2))
    return r1.makespan, out


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="replication factor"):
            ReplicationConfig(r=0)
        with pytest.raises(ValueError, match="write_policy"):
            ReplicationConfig(write_policy="most")
        with pytest.raises(ValueError, match="repair_interval"):
            ReplicationConfig(repair_interval=0)
        with pytest.raises(ValueError, match="repair_bandwidth"):
            ReplicationConfig(repair_bandwidth=-1.0)

    def test_job_gates(self):
        with pytest.raises(ValueError, match="fault-tolerant path"):
            make_job(None, ReplicationConfig(r=2))
        with pytest.raises(ValueError, match="exceeds the fleet"):
            make_job(FaultPlan([]), ReplicationConfig(r=5))
        with pytest.raises(ValueError, match="no\\s+replication layer"):
            make_job(FaultPlan([lose_replica(0.01, 0)]), None)

    def test_replication_off_is_bitwise_legacy(self):
        """replication=None perturbs nothing on the FT path."""
        _j1, r1a, out_a = sort_once(FaultPlan([]), None)
        _j2, r1b, out_b = sort_once(FaultPlan([]), ReplicationConfig(r=1))
        assert out_a.tobytes() == out_b.tobytes()
        # r=1 writes each run once, so run counts match the legacy path.
        assert r1a.n_runs == r1b.n_runs


class TestPromotionTakeover:
    def test_fault_free_run_counts(self, reference):
        _job, r1, out = sort_once(FaultPlan([]), ReplicationConfig(r=2))
        _job1, r11, _ = sort_once(FaultPlan([]), ReplicationConfig(r=1))
        # r=2 stores every run twice.
        assert r1.n_runs == 2 * r11.n_runs
        assert out.tobytes() == reference[1].tobytes()

    @pytest.mark.parametrize("asu", [0, 1, 2, 3])
    def test_asu_kill_zero_replay(self, asu, reference):
        t0, ref_out = reference
        plan = FaultPlan([crash_asu(0.8 * t0, asu)])
        _job, r1, out = sort_once(plan, ReplicationConfig(r=2))
        assert r1.completed
        assert r1.n_replayed_frags == 0
        assert r1.n_reemitted_runs == 0
        assert r1.n_promoted_runs > 0
        assert out.tobytes() == ref_out.tobytes()

    def test_kill_sweep_any_instant(self, reference):
        """Kills across the whole pass: always zero re-emission at r=2."""
        t0, ref_out = reference
        for frac in (0.2, 0.5, 0.7, 0.95):
            plan = FaultPlan([crash_asu(frac * t0, 1)])
            _job, r1, out = sort_once(plan, ReplicationConfig(r=2))
            assert r1.completed and r1.n_reemitted_runs == 0, frac
            assert out.tobytes() == ref_out.tobytes(), frac

    def test_r1_fallback_reemits(self, reference):
        # r=1 finishes pass 1 earlier than the r=2 reference, so the kill
        # must be timed against its *own* fault-free makespan.
        _jr, ref1, _ = sort_once(FaultPlan([]), ReplicationConfig(r=1))
        ref_out = reference[1]
        plan = FaultPlan([crash_asu(0.8 * ref1.makespan, 1)])
        _job, r1, out = sort_once(plan, ReplicationConfig(r=1))
        assert r1.n_reemitted_runs > 0
        assert r1.n_promoted_runs == 0
        assert out.tobytes() == ref_out.tobytes()

    def test_double_kill_r3(self, reference):
        t0, ref_out = reference
        plan = FaultPlan([crash_asu(0.7 * t0, 0), crash_asu(0.85 * t0, 2)])
        _job, r1, out = sort_once(plan, ReplicationConfig(r=3))
        assert r1.completed and r1.n_reemitted_runs == 0
        assert out.tobytes() == ref_out.tobytes()

    def test_host_kill_still_replays_frags(self, reference):
        """Host death is lineage-replay territory; replication is ASU-side."""
        t0, ref_out = reference
        plan = FaultPlan([crash_host(0.5 * t0, 0)])
        _job, r1, out = sort_once(plan, ReplicationConfig(r=2))
        assert r1.completed and r1.n_replayed_frags > 0
        assert out.tobytes() == ref_out.tobytes()


class TestQuorum:
    def test_quorum_counts_majority(self, reference):
        _job, r1, out = sort_once(
            FaultPlan([]), ReplicationConfig(r=3, write_policy="quorum")
        )
        assert r1.completed
        assert out.tobytes() == reference[1].tobytes()

    def test_quorum_kill(self, reference):
        t0, ref_out = reference
        plan = FaultPlan([crash_asu(0.8 * t0, 0)])
        _job, r1, out = sort_once(
            plan, ReplicationConfig(r=3, write_policy="quorum")
        )
        assert r1.completed and r1.n_reemitted_runs == 0
        assert out.tobytes() == ref_out.tobytes()


class TestMediaLossRepair:
    def test_lose_replica_absorbed(self, reference):
        t0, ref_out = reference
        cfg = ReplicationConfig(r=2, repair_interval=0.002)
        plan = FaultPlan([lose_replica(0.8 * t0, 2)])
        _job, r1, out = sort_once(plan, cfg)
        assert r1.completed
        # The node stayed alive, so nothing was re-emitted or taken over.
        assert r1.n_reemitted_runs == 0 and r1.n_takeover_blocks == 0
        assert out.tobytes() == ref_out.tobytes()

    def test_repair_loop_restores_redundancy(self, reference):
        t0, _ = reference
        cfg = ReplicationConfig(r=2, repair_interval=0.002)
        plan = FaultPlan([crash_asu(0.8 * t0, 1)])
        job, r1, _out = sort_once(plan, cfg)
        assert r1.n_repaired_copies > 0
        mgr = job._replica_mgr
        # Every repaired set's copies avoid the dead ASU.
        for st in mgr.sets.values():
            assert 1 not in st.copies

    def test_underreplication_gauge(self):
        from repro.metrics import MetricsRegistry

        reg = MetricsRegistry()
        mgr = ReplicationManager(ReplicationConfig(r=2), 4, registry=reg)
        run = np.zeros(10, dtype=np.int64)
        key, targets = mgr.register_emit(0, 0, run)
        assert len(targets) == 2
        assert mgr._g_under.value == 0.0  # targets in flight count as planned
        delta, fresh = mgr.copy_durable(key, targets[0])
        assert fresh and delta == 0  # policy "all" needs both copies
        delta, fresh = mgr.copy_durable(key, targets[1])
        assert fresh and delta == 10
        assert mgr.copy_durable(key, targets[1]) == (0, False)  # dup copy
        # Crash one holder: promotion (still counted), now under-replicated.
        assert mgr.on_asu_crash(targets[0]) == 0
        assert mgr.n_promoted_runs == 1
        assert mgr._g_under.value == 1.0


class TestCheckpointIntegration:
    def test_supervised_crash_with_replication(self, reference):
        rs = RecoverableSort(
            small_params(), DSMConfig.for_n(N, alpha=8, gamma=16), seed=3,
            base_faults=FaultPlan([crash_asu(0.018, 1)]),
            job_kwargs=dict(replication=ReplicationConfig(r=2), **HB),
        )
        rep = rs.run_supervised(
            crashes=[0.03], budget=RestartBudget(max_restarts=3)
        )
        assert rep.completed
        rs.job.verify()
        assert rs.output().tobytes() == reference[1].tobytes()


class TestUnrecoverableAbort:
    """Satellite: fleet-gone dead ends abort cleanly instead of crashing."""

    def test_error_is_runtime_error_subclass(self):
        # Existing `except RuntimeError` guards must keep catching it.
        assert issubclass(UnrecoverableJobError, RuntimeError)

    def test_all_asus_dead_aborts_cleanly(self):
        rs = RecoverableSort(
            small_params(), DSMConfig.for_n(N, alpha=8, gamma=16), seed=3,
            base_faults=FaultPlan(
                [crash_asu(0.004 + 0.001 * d, d) for d in range(4)]
            ),
            job_kwargs=dict(**HB),
        )
        sup = JobSupervisor(rs, RestartBudget(max_restarts=2))
        rep = sup.run()
        assert rep.aborted and not rep.completed
        assert rep.reason.startswith("unrecoverable:")

    def test_all_asus_dead_aborts_with_replication(self):
        rs = RecoverableSort(
            small_params(), DSMConfig.for_n(N, alpha=8, gamma=16), seed=3,
            base_faults=FaultPlan(
                [crash_asu(0.004 + 0.001 * d, d) for d in range(4)]
            ),
            job_kwargs=dict(replication=ReplicationConfig(r=2), **HB),
        )
        sup = JobSupervisor(rs, RestartBudget(max_restarts=2))
        rep = sup.run()
        assert rep.aborted and rep.reason.startswith("unrecoverable:")

    def test_supervisor_counts_unrecoverable(self):
        from repro.metrics import MetricsRegistry

        reg = MetricsRegistry()
        rs = RecoverableSort(
            small_params(), DSMConfig.for_n(N, alpha=8, gamma=16), seed=3,
            base_faults=FaultPlan(
                [crash_asu(0.004 + 0.001 * d, d) for d in range(4)]
            ),
            job_kwargs=dict(**HB),
        )
        sup = JobSupervisor(rs, RestartBudget(max_restarts=2), registry=reg)
        rep = sup.run()
        assert rep.aborted
        assert reg.counter("repro_supervisor_unrecoverable_total").value == 1.0


class TestDrawOrderPin:
    """Regression pin for the RandomFaultModel draw-order contract.

    ``mtt_lose_replica`` draws strictly AFTER every legacy fault class, so
    enabling it must never shift the draws of a committed seeded plan.  Any
    future fault class owes the same append-only discipline (see the comment
    in :meth:`RandomFaultModel.plan`).
    """

    KW = dict(
        seed=42, mttf_asu=0.5, mttf_host=1.0, max_crashes=1, mtt_degrade=0.6,
        mtt_flap=0.8, mtt_drop=0.4, mtt_dup=0.5, mtt_delay=0.5,
        mtt_corrupt=0.6, mtt_disk_fault=0.5,
    )

    def test_legacy_subsequence_unchanged(self):
        from repro.faults.injector import RandomFaultModel

        params = small_params()
        legacy = RandomFaultModel(**self.KW).plan(params, horizon=0.3)
        both = RandomFaultModel(mtt_lose_replica=0.2, **self.KW).plan(
            params, horizon=0.3
        )
        assert [f.describe() for f in legacy.faults] == [
            f.describe() for f in both.faults if f.kind != "lose_replica"
        ]
        assert sum(1 for f in both.faults if f.kind == "lose_replica") > 0

    def test_seeded_plan_snapshot(self):
        # Hardcoded draw snapshot: fails if anyone perturbs the rng
        # consumption order (e.g. interleaves a new class mid-plan).
        from repro.faults.injector import RandomFaultModel

        plan = RandomFaultModel(
            seed=7, mttf_asu=0.5, max_crashes=1, mtt_drop=0.4,
            mtt_lose_replica=0.3,
        ).plan(small_params(), horizon=0.25)
        assert [(f.kind, f.index, round(f.t, 12)) for f in plan.faults] == [
            ("drop_msg", 0, 0.00390145066),
            ("lose_replica", 2, 0.02251845161),
            ("lose_replica", 2, 0.040532354627),
            ("drop_msg", 0, 0.082613101607),
            ("drop_msg", 1, 0.088828504953),
            ("drop_msg", 0, 0.216454357675),
            ("lose_replica", 0, 0.220757182094),
            ("drop_msg", 0, 0.23013310254),
            ("lose_replica", 3, 0.23187169531),
        ]


class TestSchedulerChaosApp:
    def test_scheduler_chaos_case_holds_invariants(self):
        from repro.resilience.chaos import run_chaos

        rep = run_chaos(
            seeds=2, apps=("scheduler",), negative_control=False, workers=1
        )
        assert rep.ok, rep.violations()
        for c in rep.cases:
            assert c["app"] == "scheduler"
            assert c["invariants"]["deterministic_replay"]
            assert c["n_done"] > 0

    def test_default_apps_exclude_scheduler(self):
        # The default chaos sweep is the transport pair; the scheduler app
        # is opt-in (python -m repro chaos --apps scheduler).
        import inspect

        from repro.resilience.chaos import _CASE_RUNNERS, run_chaos

        assert "scheduler" in _CASE_RUNNERS
        sig = inspect.signature(run_chaos)
        assert sig.parameters["apps"].default == ("dsmsort", "filterscan")


class TestDeterminism:
    def test_same_seed_same_everything(self, reference):
        t0, _ = reference
        plan = FaultPlan([crash_asu(0.8 * t0, 0)])
        cfg = ReplicationConfig(r=2)
        _j1, r1a, out_a = sort_once(plan, cfg)
        _j2, r1b, out_b = sort_once(plan, cfg)
        assert out_a.tobytes() == out_b.tobytes()
        assert r1a.makespan == r1b.makespan
        assert r1a.n_promoted_runs == r1b.n_promoted_runs
        assert r1a.n_repaired_copies == r1b.n_repaired_copies
