"""Regression tests: the emulation must be bit-identical run to run.

Everything downstream — the figure benches, the fault-recovery acceptance
numbers, the benchmark baselines — relies on the simulation being a pure
function of (workload, platform, seed, fault plan).  These tests re-run the
two main entry points twice with identical inputs and require exact equality,
not approximate.
"""

from repro.bench.fig9 import run_figure9
from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.faults import FaultPlan, crash_asu, crash_host
from repro.trace import Tracer, chrome_dumps


def _params():
    return SystemParams(
        n_hosts=2,
        n_asus=8,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )


class TestDeterminism:
    def test_fig9_sweep_is_bit_identical(self):
        kw = dict(n_records=1 << 14, asu_counts=[1, 4], alphas=[4, 16], seed=7)
        a = run_figure9(**kw)
        b = run_figure9(**kw)
        assert a.speedup == b.speedup
        assert a.baseline_makespan == b.baseline_makespan
        assert a.adaptive_alpha == b.adaptive_alpha

    def test_fault_injected_sort_is_bit_identical(self):
        def one():
            plan = FaultPlan([crash_asu(0.02, 3), crash_host(0.03, 1)])
            job = DsmSortJob(
                _params(),
                DSMConfig.for_n(1 << 14, alpha=16, gamma=16),
                policy="sr",
                active=True,
                seed=5,
                faults=plan,
                heartbeat_interval=0.002,
                heartbeat_timeout=0.008,
            )
            res = job.run_pass1()
            job.run_pass2()
            job.verify()
            return (
                res.makespan,
                job.platform.sim.n_events_processed,
                res.n_replayed_frags,
                res.n_reemitted_runs,
                res.n_takeover_blocks,
                sorted(res.fault_report.detected.items()),
            )

        assert one() == one()

    def test_trace_export_is_byte_identical(self):
        """Same seed ⇒ the exported Chrome trace JSON is byte-identical.

        The trace extends the determinism guarantee to the observability
        layer: no wall-clock values, ids, or hashes may leak into the export.
        """

        def one() -> str:
            tracer = Tracer()
            job = DsmSortJob(
                _params(),
                DSMConfig.for_n(1 << 13, alpha=8, gamma=16),
                policy="sr",
                seed=9,
                tracer=tracer,
            )
            job.run_pass1()
            job.run_pass2()
            job.verify()
            return chrome_dumps(tracer)

        a = one()
        assert a == one()
        assert len(a) > 1000  # a real trace, not a trivially empty one

    def test_fault_injected_trace_is_byte_identical(self):
        def one() -> str:
            tracer = Tracer()
            plan = FaultPlan([crash_asu(0.02, 3)])
            job = DsmSortJob(
                _params(),
                DSMConfig.for_n(1 << 13, alpha=8, gamma=16),
                policy="sr",
                seed=9,
                faults=plan,
                heartbeat_interval=0.002,
                heartbeat_timeout=0.008,
                tracer=tracer,
            )
            job.run_pass1()
            job.run_pass2()
            job.verify()
            dump = chrome_dumps(tracer)
            # fault instants must be present: inject, detect, recover
            assert "inject" in dump and "detect asu3" in dump
            assert "recover asu3" in dump
            return dump

        assert one() == one()
