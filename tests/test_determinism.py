"""Regression tests: the emulation must be bit-identical run to run.

Everything downstream — the figure benches, the fault-recovery acceptance
numbers, the benchmark baselines — relies on the simulation being a pure
function of (workload, platform, seed, fault plan).  These tests re-run the
two main entry points twice with identical inputs and require exact equality,
not approximate.
"""

from repro.bench.fig9 import run_figure9
from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.faults import FaultPlan, crash_asu, crash_host


def _params():
    return SystemParams(
        n_hosts=2,
        n_asus=8,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )


class TestDeterminism:
    def test_fig9_sweep_is_bit_identical(self):
        kw = dict(n_records=1 << 14, asu_counts=[1, 4], alphas=[4, 16], seed=7)
        a = run_figure9(**kw)
        b = run_figure9(**kw)
        assert a.speedup == b.speedup
        assert a.baseline_makespan == b.baseline_makespan
        assert a.adaptive_alpha == b.adaptive_alpha

    def test_fault_injected_sort_is_bit_identical(self):
        def one():
            plan = FaultPlan([crash_asu(0.02, 3), crash_host(0.03, 1)])
            job = DsmSortJob(
                _params(),
                DSMConfig.for_n(1 << 14, alpha=16, gamma=16),
                policy="sr",
                active=True,
                seed=5,
                faults=plan,
                heartbeat_interval=0.002,
                heartbeat_timeout=0.008,
            )
            res = job.run_pass1()
            job.run_pass2()
            job.verify()
            return (
                res.makespan,
                job.platform.sim.n_events_processed,
                res.n_replayed_frags,
                res.n_reemitted_runs,
                res.n_takeover_blocks,
                sorted(res.fault_report.detected.items()),
            )

        assert one() == one()
