"""Tests for the dataflow graph and its safety rules."""

import pytest

from repro.emulator.params import SystemParams
from repro.functors import (
    BlockSortFunctor,
    Dataflow,
    DistributeFunctor,
    FunctorError,
    MergeFunctor,
    ScanFunctor,
)


def dsm_graph(replicate_sort=1):
    """The DSM-Sort pass-1 pipeline as a dataflow graph."""
    g = Dataflow()
    g.add_stage("distribute", DistributeFunctor.uniform(16), est_records=100_000)
    g.add_stage("blocksort", BlockSortFunctor(1024), replicas=replicate_sort, est_records=100_000)
    g.add_stage("merge", MergeFunctor(8), est_records=100_000)
    g.connect(Dataflow.SOURCE, "distribute", kind="set", est_records=100_000)
    g.connect("distribute", "blocksort", kind="set", est_records=100_000)
    g.connect("blocksort", "merge", kind="set", est_records=100_000)
    g.connect("merge", Dataflow.SINK, kind="stream", est_records=100_000)
    return g


class TestConstruction:
    def test_duplicate_stage_rejected(self):
        g = Dataflow()
        g.add_stage("a", ScanFunctor())
        with pytest.raises(FunctorError):
            g.add_stage("a", ScanFunctor())

    def test_unknown_endpoint_rejected(self):
        g = Dataflow()
        with pytest.raises(FunctorError):
            g.connect("ghost", Dataflow.SINK)

    def test_bad_edge_kind_rejected(self):
        g = Dataflow()
        g.add_stage("a", ScanFunctor())
        with pytest.raises(FunctorError):
            g.connect(Dataflow.SOURCE, "a", kind="bag")

    def test_bad_replicas(self):
        g = Dataflow()
        with pytest.raises(FunctorError):
            g.add_stage("a", ScanFunctor(), replicas=0)


class TestTopology:
    def test_topological_order(self):
        g = dsm_graph()
        order = g.topological_order()
        assert order.index("distribute") < order.index("blocksort") < order.index("merge")

    def test_cycle_detected(self):
        g = Dataflow()
        g.add_stage("a", ScanFunctor())
        g.add_stage("b", ScanFunctor())
        g.connect("a", "b")
        g.connect("b", "a")
        with pytest.raises(FunctorError, match="cycle"):
            g.validate()

    def test_in_out_edges(self):
        g = dsm_graph()
        assert [e.src for e in g.in_edges("blocksort")] == ["distribute"]
        assert [e.dst for e in g.out_edges("blocksort")] == ["merge"]


class TestValidation:
    def test_valid_dsm_graph(self):
        dsm_graph(replicate_sort=4).validate()

    def test_replicating_nonreplicable_rejected(self):
        g = Dataflow()
        g.add_stage("m", MergeFunctor(4), replicas=2)
        g.connect(Dataflow.SOURCE, "m", kind="set")
        with pytest.raises(FunctorError, match="not commutative"):
            g.validate()

    def test_replicated_consumer_of_stream_rejected(self):
        # The central safety rule: routing an ordered stream across replicas
        # would violate ordering (§3.2).
        g = Dataflow()
        g.add_stage("sort", BlockSortFunctor(64), replicas=2)
        g.connect(Dataflow.SOURCE, "sort", kind="stream")
        with pytest.raises(FunctorError, match="only set edges"):
            g.validate()

    def test_single_instance_on_stream_allowed(self):
        g = Dataflow()
        g.add_stage("sort", BlockSortFunctor(64), replicas=1)
        g.connect(Dataflow.SOURCE, "sort", kind="stream")
        g.validate()


class TestCosts:
    def test_stage_costs_positive_and_ranked(self):
        g = dsm_graph()
        costs = g.stage_costs(SystemParams())
        # blocksort (log 1024 = 10 cmp) dominates distribute (log 16 = 4).
        assert costs["blocksort"] > costs["distribute"] > 0
        assert g.total_cycles(SystemParams()) == pytest.approx(sum(costs.values()))
