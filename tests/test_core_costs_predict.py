"""Tests for the cost model and the pipeline predictor."""

import math

import pytest

from repro.core import RecordCosts, predict_pass1, predict_speedup
from repro.emulator.params import SystemParams
from repro.util.units import MB


@pytest.fixture
def params():
    return SystemParams(
        n_hosts=1,
        n_asus=8,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
    )


class TestRecordCosts:
    def test_distribute_cycles(self, params):
        c = RecordCosts(params)
        assert c.distribute_cycles(16) == pytest.approx(4 * 100 + 300)
        assert c.distribute_cycles(1) == pytest.approx(300)

    def test_blocksort_cycles(self, params):
        c = RecordCosts(params)
        assert c.blocksort_cycles(1024) == pytest.approx(10 * 100 + 300)

    def test_asu_pass1_passive_is_free(self, params):
        c = RecordCosts(params)
        assert c.asu_pass1_cycles(alpha=64, active=False) == 0.0

    def test_asu_pass1_active_components(self, params):
        c = RecordCosts(params)
        # io staging 2x64 + net 2x192 + distribute(4 compares + touch)
        expected = 2 * 64 + 2 * 192 + 4 * 100 + 300
        assert c.asu_pass1_cycles(alpha=16, active=True) == pytest.approx(expected)

    def test_host_baseline_includes_distribute(self, params):
        c = RecordCosts(params)
        active = c.host_pass1_cycles(alpha=16, beta=1024, active=True)
        passive = c.host_pass1_cycles(alpha=16, beta=1024, active=False)
        assert passive - active == pytest.approx(c.distribute_cycles(16))

    def test_disk_rate_two_passes(self, params):
        c = RecordCosts(params)
        one = c.disk_records_per_sec(passes=1)
        two = c.disk_records_per_sec(passes=2)
        assert one == pytest.approx(2 * two)
        assert one == pytest.approx(params.disk_rate / 128)


class TestPredictor:
    def test_higher_alpha_slows_asu_speeds_host(self, params):
        lo = predict_pass1(params, alpha=4, beta=1 << 12)
        hi = predict_pass1(params, alpha=256, beta=1 << 6)
        assert hi.asu_cpu_rate < lo.asu_cpu_rate
        assert hi.host_cpu_rate > lo.host_cpu_rate

    def test_asu_rate_scales_with_d(self, params):
        r8 = predict_pass1(params, 16, 1024).asu_cpu_rate
        r16 = predict_pass1(params.with_(n_asus=16), 16, 1024).asu_cpu_rate
        assert r16 == pytest.approx(2 * r8)

    def test_baseline_asu_cpu_unbounded(self, params):
        base = predict_pass1(params, 64, 1024, active=False)
        assert math.isinf(base.asu_cpu_rate)

    def test_bottleneck_identification(self, params):
        # Tiny ASU count, big alpha: ASU CPU must be the bottleneck.
        p = params.with_(n_asus=2)
        pred = predict_pass1(p, alpha=256, beta=64)
        assert pred.bottleneck == "asu_cpu"
        # Many ASUs: the single host saturates.
        p = params.with_(n_asus=64)
        pred = predict_pass1(p, alpha=256, beta=64)
        assert pred.bottleneck == "host_cpu"

    def test_slow_disk_becomes_bottleneck(self, params):
        p = params.with_(disk_rate=1 * MB)
        pred = predict_pass1(p, alpha=1, beta=1 << 14)
        assert pred.bottleneck == "asu_disk"

    def test_time_for_inverse_of_rate(self, params):
        pred = predict_pass1(params, 16, 1024)
        assert pred.time_for(1000) == pytest.approx(1000 / pred.bottleneck_rate)

    def test_figure9_shape_small_d_slowdown_large_d_speedup(self, params):
        """The headline Figure-9 property, in the analytic model."""
        n = 1 << 20
        gamma = 64
        beta = lambda a: max(1, n // (a * gamma))
        # D=2, alpha=256: active is SLOWER than passive baseline.
        p2 = params.with_(n_asus=2)
        s = predict_speedup(p2, 256, beta(256), 64, beta(64))
        assert s < 1.0
        # D=32, alpha=256: active is clearly faster.
        p32 = params.with_(n_asus=32)
        s = predict_speedup(p32, 256, beta(256), 64, beta(64))
        assert s > 1.3

    def test_alpha1_speedup_near_one(self, params):
        n, gamma = 1 << 20, 64
        p = params.with_(n_asus=4)
        s = predict_speedup(p, 1, n // gamma, 64, n // (64 * gamma))
        assert 0.8 < s < 1.3
