"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_fig10_runs(self, capsys):
        assert main(["fig10", "--n", "14"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "load-managed" in out

    def test_fig9_runs_tiny(self, capsys):
        # Keep it snappy: small n still produces the full table.
        assert main(["fig9", "--n", "13"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "adaptive" in out

    def test_sweep_gamma(self, capsys):
        assert main(["sweep-gamma", "--n", "14"]) == 0
        assert "merge split" in capsys.readouterr().out

    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "--n", "13", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "profile" in stdout and "trace events" in stdout
        doc = json.loads(out.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "C"} <= phases

    def test_metrics_writes_summary_and_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "metrics.json"
        prom = tmp_path / "metrics.prom"
        code = main([
            "metrics", "--n", "13",
            "--out", str(out), "--prom", str(prom),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "top queues by peak depth" in stdout
        assert "per-device utilization" in stdout
        assert "per-stage record latency" in stdout
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == 1
        assert any(k.startswith("repro_cpu_utilization") for k in doc["final"])
        assert "repro_stage_record_latency_seconds" in "".join(doc["histograms"])
        assert "# TYPE repro_cpu_utilization gauge" in prom.read_text()

    def test_metrics_byte_identical_across_runs(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["metrics", "--n", "12", "--out", str(a)]) == 0
        assert main(["metrics", "--n", "12", "--out", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig11"])

    def test_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "Load-Managed" in capsys.readouterr().out


class TestRecoverCli:
    def test_replicate_kill_sweep(self, capsys, tmp_path):
        import json

        out = tmp_path / "replicate.json"
        rc = main(["replicate", "--n", "11", "--seeds", "1", "--out", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "ASU kill sweep" in stdout and "PASS" in stdout
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        # 3 r-values x 4 ASUs x 1 kill instant
        assert len(doc["cases"]) == 12
        assert all(c["byte_identical"] for c in doc["cases"])
        replicated = [c for c in doc["cases"] if c["r"] >= 2]
        assert replicated
        assert all(c["n_reemitted_runs"] == 0 for c in replicated)
        assert all(c["n_replayed_frags"] == 0 for c in replicated)

    def test_recover_kill_sweep_byte_identical(self, capsys, tmp_path):
        import json

        out = tmp_path / "recover.json"
        rc = main(["recover", "--n", "12", "--seeds", "2", "--out", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "coordinator kill sweep" in stdout and "PASS" in stdout
        doc = json.loads(out.read_text())
        assert doc["ok"] is True and len(doc["cases"]) == 2
        assert all(c["byte_identical"] for c in doc["cases"])
        assert all(c["n_attempts"] == 2 for c in doc["cases"])


class TestChaosCli:
    def test_list_apps_names_every_registered_app(self, capsys):
        assert main(["chaos", "--list-apps"]) == 0
        out = capsys.readouterr().out
        for app in ("dsmsort", "filterscan", "partition", "scheduler"):
            assert app in out
        # Each line carries a one-line summary, not just the name.
        lines = [l for l in out.splitlines() if l.strip()]
        assert all(len(l.split(None, 1)) == 2 for l in lines)
