"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_fig10_runs(self, capsys):
        assert main(["fig10", "--n", "14"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "load-managed" in out

    def test_fig9_runs_tiny(self, capsys):
        # Keep it snappy: small n still produces the full table.
        assert main(["fig9", "--n", "13"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "adaptive" in out

    def test_sweep_gamma(self, capsys):
        assert main(["sweep-gamma", "--n", "14"]) == 0
        assert "merge split" in capsys.readouterr().out

    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "--n", "13", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "profile" in stdout and "trace events" in stdout
        doc = json.loads(out.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "C"} <= phases

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig11"])

    def test_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "Load-Managed" in capsys.readouterr().out
