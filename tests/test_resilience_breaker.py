"""Tests for repro.resilience.breaker: the per-link circuit-breaker protocol."""

import pytest

from repro.metrics import MetricsRegistry
from repro.resilience import BreakerBoard, CircuitBreaker
from repro.sim import Simulator


def advance(sim, to):
    """Move the clock to ``to`` (breaker transitions are lazy on the clock)."""
    sim.schedule_callback(lambda: None, delay=to - sim.now)
    sim.run()


class TestCircuitBreaker:
    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="fail_threshold"):
            CircuitBreaker(sim, "l", fail_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(sim, "l", cooldown=0.0)

    def test_trips_after_threshold_consecutive_failures(self):
        sim = Simulator()
        br = CircuitBreaker(sim, "l", fail_threshold=3, cooldown=1.0)
        br.record_failure()
        br.record_failure()
        assert br.state == CircuitBreaker.CLOSED and br.healthy
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN and not br.healthy
        assert br.n_trips == 1

    def test_success_resets_the_failure_count(self):
        sim = Simulator()
        br = CircuitBreaker(sim, "l", fail_threshold=3, cooldown=1.0)
        for _ in range(10):
            br.record_failure()
            br.record_failure()
            br.record_success()  # never three in a row
        assert br.state == CircuitBreaker.CLOSED and br.n_trips == 0

    def test_half_open_after_cooldown_then_success_closes(self):
        sim = Simulator()
        br = CircuitBreaker(sim, "l", fail_threshold=1, cooldown=0.5)
        br.record_failure()
        assert not br.healthy
        advance(sim, 0.25)
        assert br.state == CircuitBreaker.OPEN  # cooldown not elapsed
        advance(sim, 0.75)
        assert br.state == CircuitBreaker.HALF_OPEN
        assert br.healthy  # half-open links are probe-able, not quarantined
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED

    def test_failure_in_half_open_re_trips(self):
        sim = Simulator()
        br = CircuitBreaker(sim, "l", fail_threshold=1, cooldown=0.5)
        br.record_failure()
        advance(sim, 1.0)
        assert br.state == CircuitBreaker.HALF_OPEN
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN and br.n_trips == 2
        # The re-trip restarts the cooldown from now.
        advance(sim, 1.25)
        assert br.state == CircuitBreaker.OPEN
        advance(sim, 1.75)
        assert br.state == CircuitBreaker.HALF_OPEN

    def test_half_open_same_instant_race_failure_wins(self):
        """Regression: a success and a failure resolving at the same virtual
        instant as the half-open probe must re-trip, not leave the breaker
        closed with the failure absorbed as 1 of ``fail_threshold`` fresh
        failures.  Both outcomes were in flight together, so the link is
        still suspect."""
        sim = Simulator()
        br = CircuitBreaker(sim, "l", fail_threshold=5, cooldown=0.5)
        for _ in range(5):
            br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        advance(sim, 1.0)
        assert br.state == CircuitBreaker.HALF_OPEN
        br.record_success()  # probe ack closes the breaker...
        assert br.state == CircuitBreaker.CLOSED
        br.record_failure()  # ...but its twin times out at the same instant
        assert br.state == CircuitBreaker.OPEN and br.n_trips == 2

    def test_failure_after_half_open_close_at_later_instant_is_fresh(self):
        """The race rule applies only at the exact closing instant: a later
        failure starts a fresh fail_threshold window as usual."""
        sim = Simulator()
        br = CircuitBreaker(sim, "l", fail_threshold=3, cooldown=0.5)
        for _ in range(3):
            br.record_failure()
        advance(sim, 1.0)
        br.record_success()  # half-open -> closed at t=1.0
        advance(sim, 1.5)
        br.record_failure()  # one of three; not the same instant
        assert br.state == CircuitBreaker.CLOSED and br.n_trips == 1

    def test_transition_history(self):
        sim = Simulator()
        br = CircuitBreaker(sim, "l", fail_threshold=1, cooldown=0.5)
        br.record_failure()
        advance(sim, 1.0)
        br.state  # observe: lazily records the half-open transition
        br.record_success()
        assert [name for _t, name in br.transitions] == [
            "open", "half-open", "closed"
        ]

    def test_state_gauge_reports_raw_state(self):
        sim = Simulator()
        sim.metrics = MetricsRegistry()
        br = CircuitBreaker(sim, "host0<->asu1", fail_threshold=1, cooldown=0.5)
        g = sim.metrics.get("repro_breaker_state", link="host0<->asu1")
        assert g is not None and g.sample(sim.now) == 0.0
        br.record_failure()
        assert g.sample(sim.now) == 1.0
        # Scraping after the cooldown must NOT advance the lazy transition:
        # the gauge reads _state raw.
        advance(sim, 1.0)
        assert g.sample(sim.now) == 1.0
        assert br.state == CircuitBreaker.HALF_OPEN  # the property does
        assert g.sample(sim.now) == 2.0
        # Transition counters were recorded as well.
        c = sim.metrics.get("repro_breaker_transitions_total", to="open")
        assert c is not None and c.value == 1.0


class TestBreakerBoard:
    def test_lazy_creation_on_first_failure(self):
        sim = Simulator()
        board = BreakerBoard(sim, fail_threshold=2, cooldown=0.5)
        assert len(board) == 0
        # Success on an unknown link allocates nothing (fault-free runs stay
        # allocation-identical to runs without a board).
        board.record_success("host0", "asu0")
        assert len(board) == 0 and board.peek("host0", "asu0") is None
        assert board.healthy("host0", "asu0")
        board.record_failure("host0", "asu0")
        assert len(board) == 1 and board.peek("host0", "asu0") is not None

    def test_key_is_unordered(self):
        sim = Simulator()
        board = BreakerBoard(sim, fail_threshold=2, cooldown=0.5)
        board.record_failure("host0", "asu3")
        board.record_failure("asu3", "host0")
        assert len(board) == 1
        assert not board.healthy("host0", "asu3")

    def test_open_links_and_trip_count(self):
        sim = Simulator()
        board = BreakerBoard(sim, fail_threshold=1, cooldown=0.5)
        board.record_failure("host1", "asu0")
        board.record_failure("host0", "asu2")
        board.record_failure("host0", "asu2")  # already open: no extra trip
        assert board.open_links() == ["asu0<->host1", "asu2<->host0"]
        assert board.n_trips() == 2
        board.get("host1", "asu0")  # get() never resets state
        assert board.n_trips() == 2

    def test_recovery_closes_via_half_open(self):
        sim = Simulator()
        board = BreakerBoard(sim, fail_threshold=1, cooldown=0.25)
        board.record_failure("host0", "asu0")
        assert not board.healthy("host0", "asu0")
        advance(sim, 0.5)
        board.record_success("host0", "asu0")
        assert board.healthy("host0", "asu0")
        assert board.open_links() == []
