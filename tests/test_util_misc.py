"""Tests for formatting helpers, RNG registry, and the run-report renderer."""

import pytest

from repro.emulator import ActivePlatform, SystemParams
from repro.util.rng import RngRegistry, derive_seed
from repro.util.units import (
    GB,
    KB,
    MB,
    fmt_bytes,
    fmt_count,
    fmt_rate,
    fmt_time,
)


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expect",
        [
            (512, "512 B"),
            (2 * KB, "2.0 KiB"),
            (3 * MB, "3.0 MiB"),
            (5 * GB, "5.0 GiB"),
        ],
    )
    def test_fmt_bytes(self, n, expect):
        assert fmt_bytes(n) == expect

    @pytest.mark.parametrize(
        "s,expect",
        [
            (120.0, "2.00 min"),
            (2.5, "2.50 s"),
            (0.004, "4.00 ms"),
            (3e-6, "3.00 us"),
            (5e-9, "5 ns"),
        ],
    )
    def test_fmt_time(self, s, expect):
        assert fmt_time(s) == expect

    def test_fmt_rate(self):
        assert fmt_rate(25 * MB) == "25.0 MiB/s"

    @pytest.mark.parametrize(
        "n,expect",
        [(999, "999"), (1500, "1.5K"), (2.5e6, "2.5M"), (3e9, "3.0G")],
    )
    def test_fmt_count(self, n, expect):
        assert fmt_count(n) == expect


class TestRngRegistry:
    def test_derive_seed_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_reset_restarts_streams(self):
        r = RngRegistry(5)
        a1 = r.get("x").integers(0, 100, 10).tolist()
        r.reset()
        a2 = r.get("x").integers(0, 100, 10).tolist()
        assert a1 == a2

    def test_fork_is_independent_and_deterministic(self):
        child1 = RngRegistry(5).fork("w")
        child2 = RngRegistry(5).fork("w")
        other = RngRegistry(5).fork("v")
        s1 = child1.get("x").integers(0, 1000, 10).tolist()
        s2 = child2.get("x").integers(0, 1000, 10).tolist()
        s3 = other.get("x").integers(0, 1000, 10).tolist()
        assert s1 == s2
        assert s1 != s3

    def test_streams_cached(self):
        r = RngRegistry(0)
        assert r.get("a") is r.get("a")


class TestRunReportRender:
    def test_render_lists_all_nodes(self):
        plat = ActivePlatform(SystemParams(n_hosts=2, n_asus=3))

        def main(_p):
            yield from plat.asus[0].disk_read(1 << 20)

        report = plat.run_to_completion(lambda p: main(p))
        text = report.render()
        for node in ("host0", "host1", "asu0", "asu1", "asu2"):
            assert node in text
        assert "makespan" in text
        assert "events" in text
