"""Tests for functors: costs, eligibility, and real data transformation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.emulator.params import SystemParams
from repro.functors import (
    AggregateFunctor,
    BlockSortFunctor,
    DistributeFunctor,
    FilterFunctor,
    FunctorError,
    MapFunctor,
    MergeFunctor,
    ScanFunctor,
    asu_eligible,
    merge_sorted_batches,
    sample_splitters,
    uniform_splitters,
)
from repro.util.records import make_records
from repro.util.validation import check_sorted_permutation, is_sorted


def batch_of(keys):
    return make_records(np.asarray(keys, dtype=np.uint32))


PARAMS = SystemParams()


class TestCostModel:
    def test_distribute_cost_is_log_alpha(self):
        f = DistributeFunctor.uniform(16)
        assert f.compares_per_record() == pytest.approx(4.0)

    def test_blocksort_cost_is_log_beta(self):
        f = BlockSortFunctor(beta=1024)
        assert f.compares_per_record() == pytest.approx(10.0)

    def test_merge_cost_is_log_gamma(self):
        f = MergeFunctor(gamma=8)
        assert f.compares_per_record() == pytest.approx(3.0)

    def test_degenerate_costs_zero(self):
        assert DistributeFunctor.uniform(1).compares_per_record() == 0.0
        assert BlockSortFunctor(1).compares_per_record() == 0.0
        assert MergeFunctor(1).compares_per_record() == 0.0

    def test_cost_cycles_formula(self):
        f = DistributeFunctor.uniform(4)  # 2 compares/record
        n = 1000
        expected = n * (2 * PARAMS.cycles_per_compare + PARAMS.cycles_per_record)
        assert f.cost_cycles(n, PARAMS) == pytest.approx(expected)

    def test_total_work_is_n_log_alphabetagamma(self):
        # §4.3: total = n log(αβγ); with αβγ = n it is n log n.
        alpha, beta, gamma = 16, 1024, 64
        n = alpha * beta * gamma
        per_rec = (
            DistributeFunctor.uniform(alpha).compares_per_record()
            + BlockSortFunctor(beta).compares_per_record()
            + MergeFunctor(gamma).compares_per_record()
        )
        assert per_rec == pytest.approx(math.log2(n))


class TestAsuEligibility:
    def test_bounded_functors_eligible(self):
        for f in (ScanFunctor(), DistributeFunctor.uniform(16), BlockSortFunctor(64)):
            ok, reason = asu_eligible(f, asu_mem_bytes=8 << 20)
            assert ok, reason

    def test_unbounded_cost_ineligible(self):
        f = MapFunctor(lambda b: b, compares=math.inf)
        ok, reason = asu_eligible(f, asu_mem_bytes=8 << 20)
        assert not ok and "unbounded" in reason

    def test_state_exceeding_memory_ineligible(self):
        f = BlockSortFunctor(beta=1 << 20)  # 128 MiB of state
        ok, reason = asu_eligible(f, asu_mem_bytes=1 << 20)
        assert not ok and "exceeds ASU memory" in reason

    def test_unbounded_cost_cannot_be_scheduled(self):
        f = MapFunctor(lambda b: b, compares=math.inf)
        with pytest.raises(FunctorError):
            f.cost_cycles(10, PARAMS)


class TestBasicFunctors:
    def test_scan_passthrough(self):
        b = batch_of([1, 2])
        assert ScanFunctor().apply(b)[0] is b

    def test_map_transforms(self):
        f = MapFunctor(lambda b: np.sort(b, order="key"), compares=1)
        out = f.apply(batch_of([3, 1, 2]))[0]
        assert list(out["key"]) == [1, 2, 3]

    def test_map_length_change_rejected(self):
        f = MapFunctor(lambda b: b[:1], compares=1)
        with pytest.raises(FunctorError):
            f.apply(batch_of([1, 2]))

    def test_map_negative_cost_rejected(self):
        with pytest.raises(FunctorError):
            MapFunctor(lambda b: b, compares=-1)

    def test_filter_keeps_matching(self):
        f = FilterFunctor(lambda b: b["key"] > 2)
        out = f.apply(batch_of([1, 2, 3, 4]))[0]
        assert list(out["key"]) == [3, 4]

    def test_filter_selectivity(self):
        f = FilterFunctor(lambda b: b["key"] % 2 == 0)
        assert f.selectivity(batch_of([0, 1, 2, 3])) == pytest.approx(0.5)
        assert f.selectivity(batch_of([])) == 0.0

    @pytest.mark.parametrize(
        "op,expected", [("count", 4), ("sum", 10), ("min", 1), ("max", 4)]
    )
    def test_aggregate_ops(self, op, expected):
        f = AggregateFunctor(op)
        f.apply(batch_of([1, 2]))
        f.apply(batch_of([3, 4]))
        assert f.value == expected

    def test_aggregate_combine_matches_single(self):
        a, b, c = AggregateFunctor("sum"), AggregateFunctor("sum"), AggregateFunctor("sum")
        a.apply(batch_of([1, 2]))
        b.apply(batch_of([3]))
        c.apply(batch_of([1, 2]))
        c.apply(batch_of([3]))
        assert a.combine(b).value == c.value

    def test_aggregate_unknown_op(self):
        with pytest.raises(FunctorError):
            AggregateFunctor("median")

    def test_aggregate_combine_mismatched_ops(self):
        with pytest.raises(FunctorError):
            AggregateFunctor("sum").combine(AggregateFunctor("min"))


class TestDistribute:
    def test_partitions_cover_input(self):
        f = DistributeFunctor.uniform(4)
        b = batch_of(np.linspace(0, 2**32 - 2, 100, dtype=np.uint32))
        parts = f.apply(b)
        assert len(parts) == 4
        total = np.concatenate(parts)
        assert sorted(total["key"].tolist()) == sorted(b["key"].tolist())

    def test_bucket_ranges_disjoint_and_ordered(self):
        f = DistributeFunctor.uniform(4)
        b = batch_of(np.random.default_rng(0).integers(0, 2**32 - 1, 1000, dtype=np.uint64))
        parts = f.apply(b)
        for lo_part, hi_part in zip(parts, parts[1:]):
            if lo_part.shape[0] and hi_part.shape[0]:
                assert lo_part["key"].max() <= hi_part["key"].min()

    def test_relative_order_within_bucket_kept(self):
        f = DistributeFunctor(splitters=[10])
        b = batch_of([5, 20, 3, 30, 7])
        lo, hi = f.apply(b)
        assert list(lo["key"]) == [5, 3, 7]
        assert list(hi["key"]) == [20, 30]

    def test_alpha_one_is_identity(self):
        f = DistributeFunctor.uniform(1)
        b = batch_of([4, 2])
        assert f.apply(b) == [b]

    def test_histogram_matches_partition(self):
        f = DistributeFunctor.uniform(8)
        b = batch_of(np.random.default_rng(1).integers(0, 2**32 - 1, 500, dtype=np.uint64))
        hist = f.histogram(b)
        sizes = [p.shape[0] for p in f.apply(b)]
        assert hist.tolist() == sizes

    def test_decreasing_splitters_rejected(self):
        with pytest.raises(FunctorError):
            DistributeFunctor(splitters=[100, 50])

    def test_sample_splitters_balance_skew(self):
        rng = np.random.default_rng(2)
        keys = (np.clip(rng.exponential(0.05, 20000), 0, 1) * (2**32 - 1)).astype(np.uint64)
        f_uniform = DistributeFunctor.uniform(8)
        f_sampled = DistributeFunctor(sample_splitters(keys, 8, rng))
        b = make_records(keys.astype(np.uint32))
        h_u = f_uniform.histogram(b)
        h_s = f_sampled.histogram(b)
        # Sampled splitters give a far flatter histogram than uniform ones.
        assert h_s.max() < h_u.max() / 2

    def test_sample_splitters_empty_rejected(self):
        with pytest.raises(ValueError):
            sample_splitters(np.empty(0, dtype=np.uint64), 4)

    def test_uniform_splitters_count(self):
        assert uniform_splitters(8).shape == (7,)
        assert uniform_splitters(1).shape == (0,)


class TestBlockSort:
    def test_run_packets_sorted_and_complete(self):
        f = BlockSortFunctor(beta=4)
        b = batch_of([9, 1, 8, 2, 7, 3, 6, 4, 5])
        packets = f.run_packets(b)
        assert [p.n_records for p in packets] == [4, 4, 1]
        for p in packets:
            assert p.sorted and is_sorted(p.batch)
        merged = np.concatenate([p.batch for p in packets])
        assert sorted(merged["key"].tolist()) == sorted(b["key"].tolist())

    def test_feed_flush_streaming(self):
        f = BlockSortFunctor(beta=4)
        out = []
        out += f.feed(batch_of([5, 3]))
        out += f.feed(batch_of([4, 1]))   # completes one block of 4
        out += f.feed(batch_of([2]))
        out += f.flush()                   # tail run of 1
        assert [p.n_records for p in out] == [4, 1]
        assert all(is_sorted(p.batch) for p in out)
        keys = np.concatenate([p.batch for p in out])["key"]
        assert sorted(keys.tolist()) == [1, 2, 3, 4, 5]

    def test_flush_idempotent(self):
        f = BlockSortFunctor(beta=4)
        f.feed(batch_of([1]))
        assert len(f.flush()) == 1
        assert f.flush() == []

    def test_bad_beta(self):
        with pytest.raises(FunctorError):
            BlockSortFunctor(0)


class TestMerge:
    def test_merge_runs(self):
        f = MergeFunctor(gamma=3)
        runs = [batch_of([1, 4, 7]), batch_of([2, 5, 8]), batch_of([3, 6, 9])]
        out = f.merge(runs, verify=True)
        assert list(out["key"]) == list(range(1, 10))

    def test_merge_too_many_runs_rejected(self):
        f = MergeFunctor(gamma=2)
        with pytest.raises(FunctorError, match="split the merge"):
            f.merge([batch_of([1]), batch_of([2]), batch_of([3])])

    def test_merge_verify_catches_unsorted(self):
        f = MergeFunctor(gamma=2)
        with pytest.raises(AssertionError):
            f.merge([batch_of([3, 1])], verify=True)

    def test_merge_packets_requires_sorted_mark(self):
        from repro.containers import Packet

        f = MergeFunctor(gamma=2)
        with pytest.raises(FunctorError):
            f.merge_packets([Packet(batch_of([1]))], verify=True)

    def test_merge_empty(self):
        assert merge_sorted_batches([]).shape == (0,)
        assert merge_sorted_batches([batch_of([])]).shape == (0,)

    def test_plan_passes(self):
        f = MergeFunctor(gamma=8)
        assert f.plan_passes(1) == 0
        assert f.plan_passes(8) == 1
        assert f.plan_passes(9) == 2
        assert f.plan_passes(64) == 2

    def test_plan_passes_fanin_one(self):
        with pytest.raises(FunctorError):
            MergeFunctor(1).plan_passes(5)


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=300),
    alpha=st.sampled_from([1, 2, 4, 16]),
    beta=st.sampled_from([1, 4, 64]),
)
def test_property_distribute_sort_merge_pipeline(keys, alpha, beta):
    """distribute -> blocksort -> merge == a full sort, for any input."""
    b = batch_of(keys)
    dist = DistributeFunctor.uniform(alpha)
    bs = BlockSortFunctor(beta)
    buckets = dist.apply(b)
    sorted_buckets = []
    for bucket in buckets:
        packets = bs.run_packets(bucket)
        merged = merge_sorted_batches([p.batch for p in packets])
        sorted_buckets.append(merged)
    final = np.concatenate(sorted_buckets) if sorted_buckets else b
    check_sorted_permutation(b, final)
