"""Tests for the routing extensions: randomized cycling, adaptive switch,
shared-ASU derating, and the offloaded DSM-Sort."""

import numpy as np
import pytest

from repro.bench.fig9 import fig9_params
from repro.core import ConfigSolver, DSMConfig
from repro.core.routing import AdaptiveSwitch, RandomizedCycling, make_router
from repro.dsmsort import DsmSortJob, OffloadedDsmSort


class TestRandomizedCycling:
    def test_per_bucket_cycles_cover_all_instances(self):
        rc = RandomizedCycling(4, n_buckets=2, rng=np.random.default_rng(1))
        seen = {rc.choose(0, 1) for _ in range(4)}
        assert seen == {0, 1, 2, 3}

    def test_no_consecutive_collision_within_bucket(self):
        rc = RandomizedCycling(8, n_buckets=1, rng=np.random.default_rng(2))
        picks = [rc.choose(0, 1) for _ in range(16)]
        # A full cycle never repeats an instance.
        assert sorted(picks[:8]) == list(range(8))
        assert sorted(picks[8:]) == list(range(8))

    def test_buckets_decorrelated(self):
        rc = RandomizedCycling(8, n_buckets=16, rng=np.random.default_rng(3))
        firsts = [rc.choose(b, 1) for b in range(16)]
        assert len(set(firsts)) > 1  # not all buckets start at instance 0

    def test_bucket_range_checked(self):
        rc = RandomizedCycling(2, n_buckets=4)
        with pytest.raises(ValueError):
            rc.choose(4, 1)

    def test_factory(self):
        assert make_router("rc", 4, n_buckets=8).name == "rc"

    def test_balances_exactly(self):
        rc = RandomizedCycling(4, n_buckets=3, rng=np.random.default_rng(4))
        for _ in range(100):
            for b in range(3):
                rc.on_sent(rc.choose(b, 1), 1)
        assert rc.imbalance() == pytest.approx(1.0)


class TestAdaptiveSwitch:
    def test_stays_static_when_balanced(self):
        r = AdaptiveSwitch(2, n_buckets=8, min_records=100)
        for i in range(400):
            bucket = i % 8  # uniform buckets -> balanced halves
            inst = r.choose(bucket, 1)
            r.on_sent(inst, 1)
        assert not r.switched

    def test_switches_under_skew_and_rebalances(self):
        r = AdaptiveSwitch(
            2, n_buckets=8, min_records=100, rng=np.random.default_rng(5)
        )
        for _ in range(2000):
            inst = r.choose(0, 1)  # all records in bucket 0 -> instance 0
            r.on_sent(inst, 1)
        assert r.switched
        assert r.switched_after <= 200  # reacted soon after min_records
        # After the switch the split recovers toward balance.
        assert r.imbalance() < 1.4

    def test_factory(self):
        assert make_router("adaptive_switch", 2, n_buckets=4).name == "adaptive_switch"

    def test_end_to_end_recovers_under_skew(self):
        params = fig9_params(n_asus=8, n_hosts=2)
        cfg = DSMConfig.for_n(1 << 15, alpha=16, gamma=16)
        kw = dict(workload="half_uniform_half_exponential", seed=3)
        t_static = DsmSortJob(params, cfg, policy="static", **kw).run_pass1()
        t_switch = DsmSortJob(params, cfg, policy="adaptive_switch", **kw).run_pass1()
        assert t_switch.makespan < t_static.makespan
        assert t_switch.imbalance < t_static.imbalance


class TestSharedAsus:
    def test_duty_range_checked(self):
        params = fig9_params(n_asus=4)
        cfg = DSMConfig.for_n(1 << 14, alpha=16, gamma=16)
        with pytest.raises(ValueError):
            DsmSortJob(params, cfg, background_asu_duty=1.0)
        with pytest.raises(ValueError):
            DsmSortJob(params, cfg, background_asu_duty=-0.1)

    def test_sharing_slows_asu_bound_runs(self):
        params = fig9_params(n_asus=2)
        cfg = DSMConfig.for_n(1 << 15, alpha=256, gamma=16)
        t0 = DsmSortJob(params, cfg, seed=1).run_pass1().makespan
        t1 = DsmSortJob(params, cfg, seed=1, background_asu_duty=0.5).run_pass1().makespan
        assert t1 > 1.5 * t0  # ASU-bound: halving capacity ~doubles time

    def test_derated_solver_lowers_alpha(self):
        solver = ConfigSolver(fig9_params(n_asus=16), gamma=64)
        idle = solver.choose(1 << 16)
        aware = solver.derate_for_sharing(0.6).choose(1 << 16)
        assert aware.alpha < idle.alpha

    def test_derate_bounds(self):
        solver = ConfigSolver(fig9_params(n_asus=4))
        with pytest.raises(ValueError):
            solver.derate_for_sharing(1.0)


class TestOffloadedDsmSort:
    def _run(self, d=8, n=1 << 14, alpha=16):
        params = fig9_params(n_asus=d)
        cfg = DSMConfig.for_n(n, alpha=alpha, gamma=16)
        job = OffloadedDsmSort(params, cfg, seed=2)
        res = job.run_pass1()
        return job, res

    def test_verifies_sorted_permutation(self):
        job, _res = self._run()
        job.verify()

    def test_runs_live_on_bucket_owners(self):
        job, _res = self._run()
        for d in range(job.params.n_asus):
            for bucket, _run in job.runs_on_asu[d]:
                assert job.owner_of(bucket) == d

    def test_hosts_idle(self):
        _job, res = self._run()
        assert all(u == 0.0 for u in res.host_util)

    def test_less_network_traffic_than_host_based(self):
        n, alpha = 1 << 14, 16
        params = fig9_params(n_asus=8)
        cfg = DSMConfig.for_n(n, alpha=alpha, gamma=16)
        off = OffloadedDsmSort(params, cfg, seed=2)
        r_off = off.run_pass1()
        r_host = DsmSortJob(params, cfg, seed=2).run_pass1()
        assert r_off.net_bytes < 0.6 * r_host.net_bytes

    def test_deterministic(self):
        _j1, r1 = self._run()
        _j2, r2 = self._run()
        assert r1.makespan == r2.makespan

    def test_rerunnable(self):
        job, r1 = self._run()
        r2 = job.run_pass1()
        assert r1.makespan == r2.makespan
        job.verify()
