"""Tests for partition tolerance: seeded cuts, network-borne detection,
epoch-fenced membership, and split-brain-safe takeover.

Covers the repro.membership view service, the partition/heal fault kinds and
their network-layer enforcement, the network-mode FailureDetector (SWIM-style
indirect probing, crashed-vs-unreachable, re-admission), and one end-to-end
partitioned sort whose output must be byte-identical to the fault-free run.
"""

import hashlib

import numpy as np
import pytest

from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.emulator.platform import ActivePlatform
from repro.faults import (
    FailureDetector,
    Fault,
    FaultPlan,
    Injector,
    RandomFaultModel,
    crash_asu,
    heal,
    indices_of,
    mask_of,
    partition,
)
from repro.faults.detector import ALIVE, CONFIRMED, SUSPECTED, UNREACHABLE
from repro.faults.errors import StaleEpochError
from repro.membership import ViewService
from repro.metrics import MetricsRegistry
from repro.replica import ReplicationConfig
from repro.resilience.channel import RetryPolicy
from repro.util.records import concat_records, sort_records


def small_params(**over):
    base = dict(n_hosts=2, n_asus=4)
    base.update(over)
    return SystemParams(**base)


# ---------------------------------------------------------------------------
# partition / heal fault kinds
# ---------------------------------------------------------------------------
class TestPartitionFaultKind:
    def test_mask_roundtrip(self):
        assert indices_of(mask_of([3, 0, 5])) == (0, 3, 5)
        assert indices_of(mask_of([])) == ()
        with pytest.raises(ValueError, match="negative device index"):
            mask_of([-1])

    def test_constructor_encoding(self):
        f = partition(1.0, [1, 2], hosts=[0], duration=0.5, asymmetry="out")
        assert f.kind == "partition"
        assert indices_of(f.index) == (1, 2)
        assert indices_of(f.peer) == (0,)
        assert (f.duration, f.factor) == (0.5, 1.0)
        assert "out" in f.describe() and "asu1" in f.describe()

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="nonempty minority group"):
            partition(0.0, [], duration=0.5)

    def test_unknown_asymmetry_rejected(self):
        with pytest.raises(KeyError):
            partition(0.0, [1], asymmetry="sideways")
        with pytest.raises(ValueError, match="asymmetry mode"):
            Fault(t=0.0, kind="partition", index=2, peer=0, duration=0.5,
                  factor=7.0)

    def test_whole_platform_cut_rejected(self):
        p = small_params()
        with pytest.raises(ValueError, match="whole platform"):
            FaultPlan(
                [partition(0.0, range(p.n_asus), hosts=range(p.n_hosts))]
            ).validate(p)

    def test_target_validation(self):
        p = small_params()
        FaultPlan([partition(0.0, [3], hosts=[1])]).validate(p)
        with pytest.raises(ValueError, match="ASU mask exceeds"):
            FaultPlan([partition(0.0, [4])]).validate(p)
        with pytest.raises(ValueError, match="host mask exceeds"):
            FaultPlan([partition(0.0, [0], hosts=[2])]).validate(p)

    def test_heal_takes_no_target(self):
        assert heal(1.5).kind == "heal"
        with pytest.raises(ValueError, match="no target"):
            Fault(t=0.0, kind="heal", index=1)


class TestDrawOrderPin:
    """The draw-order contract: enabling partitions must not shift any
    earlier class's draws, and committed seeded plans stay bit-identical."""

    PIN_KW = dict(
        seed=7, mttf_asu=3.0, mttf_host=6.0, mtt_degrade=4.0, mtt_flap=5.0,
        mtt_drop=6.0, mtt_dup=7.0, mtt_delay=8.0, mtt_corrupt=9.0,
        mtt_disk_fault=5.0, mtt_lose_replica=4.0, max_crashes=2,
    )

    def test_partition_draws_do_not_perturb_committed_plans(self):
        p = small_params()
        legacy = RandomFaultModel(**self.PIN_KW).plan(p, horizon=2.0)
        both = RandomFaultModel(
            mtt_partition=1.0, partition_duration=0.3, **self.PIN_KW
        ).plan(p, horizon=2.0)
        assert [f.describe() for f in legacy] == [
            f.describe() for f in both if f.kind != "partition"
        ]
        assert any(f.kind == "partition" for f in both)

    def test_golden_snapshot(self):
        # Hard pin of a committed seeded plan.  If this fails, a new fault
        # class drew *before* an existing one — move its draws to the end of
        # RandomFaultModel.plan (the draw-order contract in injector.py).
        plan = RandomFaultModel(**self.PIN_KW).plan(small_params(), horizon=2.0)
        descs = [f.describe() for f in plan]
        assert len(descs) == 24
        assert descs[0] == "t=0.050 drop-msgs host1<->asu1 for 0.020s"
        assert descs[-1] == "t=1.893 drop-msgs host0<->asu2 for 0.020s"
        digest = hashlib.sha256("\n".join(descs).encode()).hexdigest()
        assert digest == (
            "9a26287cf52af20a70a4898a4e6f39501ac49553858de1c55d9274254f8a510b"
        )

    def test_mixed_asymmetry_validated(self):
        with pytest.raises(ValueError, match="'mixed'"):
            RandomFaultModel(seed=0, partition_asymmetry="diag")


# ---------------------------------------------------------------------------
# network-layer cut enforcement
# ---------------------------------------------------------------------------
class TestNetPartitionEnforcement:
    def _run_probe(self, mode, src, dst, send_at=0.2, until=2.0):
        """One message src->dst at ``send_at`` under a [0.1, 1.0) cut of
        {asu1} with the given mode; returns (arrivals, network)."""
        plat = ActivePlatform(small_params())
        net = plat.network
        net.set_partition({"asu1"}, 0.1, 1.0, mode=mode)
        arrivals = []

        def receiver():
            msg = yield net.mailbox(dst).get()
            arrivals.append((plat.sim.now, msg.payload))

        plat.spawn(receiver())
        plat.sim.schedule_callback(
            lambda: net.post(src, dst, "probe", 8), delay=send_at
        )
        plat.sim.run(until=until)
        return arrivals, net

    def test_symmetric_cut_drops_both_directions(self):
        for src, dst in (("host0", "asu1"), ("asu1", "host0")):
            arrivals, net = self._run_probe("both", src, dst)
            assert arrivals == []
            assert net.n_partition_dropped == 1
            # Silent loss: the destination is alive, the route is gone.
            assert net.dead_letters == []

    def test_out_cut_severs_minority_outbound_only(self):
        arrivals, _ = self._run_probe("out", "asu1", "host0")
        assert arrivals == []
        arrivals, _ = self._run_probe("out", "host0", "asu1")
        assert len(arrivals) == 1  # inbound still delivered

    def test_in_cut_severs_majority_inbound_only(self):
        arrivals, _ = self._run_probe("in", "host0", "asu1")
        assert arrivals == []
        arrivals, _ = self._run_probe("in", "asu1", "host0")
        assert len(arrivals) == 1  # outbound still delivered

    def test_same_side_traffic_untouched(self):
        arrivals, net = self._run_probe("both", "host0", "asu2")
        assert len(arrivals) == 1 and net.n_partition_dropped == 0

    def test_after_window_traffic_resumes(self):
        arrivals, _ = self._run_probe("both", "host0", "asu1", send_at=1.5)
        assert len(arrivals) == 1

    def test_heal_truncates_active_window(self):
        plat = ActivePlatform(small_params())
        net = plat.network
        net.set_partition({"asu1"}, 0.1, 10.0)
        arrivals = []

        def receiver():
            while True:
                msg = yield net.mailbox("asu1").get()
                arrivals.append(plat.sim.now)

        plat.spawn(receiver())
        plat.sim.schedule_callback(lambda: net.heal_partitions(plat.sim.now), delay=0.5)
        plat.sim.schedule_callback(
            lambda: net.post("host0", "asu1", "hello", 8), delay=0.6
        )
        plat.sim.run(until=2.0)
        assert len(arrivals) == 1
        # A heal repairs today's cut; it does not cancel tomorrow's.
        assert net.heal_partitions(5.0) == 0

    def test_injector_fires_partition_and_heal(self):
        plat = ActivePlatform(small_params())
        plan = FaultPlan([partition(0.1, [1], duration=5.0), heal(0.5)])
        inj = Injector(plat, plan)
        inj.arm()
        delivered = []

        def receiver():
            msg = yield plat.network.mailbox("asu1").get()
            delivered.append(plat.sim.now)

        plat.spawn(receiver())
        # At t=0.3 the cut is live; at t=0.7 the heal has ended it early.
        plat.sim.schedule_callback(
            lambda: plat.network.post("host0", "asu1", "a", 8), delay=0.3
        )
        plat.sim.schedule_callback(
            lambda: plat.network.post("host0", "asu1", "b", 8), delay=0.7
        )
        plat.sim.run(until=2.0)
        assert [f.kind for f in inj.injected] == ["partition", "heal"]
        assert len(delivered) == 1 and delivered[0] >= 0.7

    def test_set_partition_validation(self):
        net = ActivePlatform(small_params()).network
        with pytest.raises(ValueError, match="empty partition window"):
            net.set_partition({"asu0"}, 1.0, 1.0)
        with pytest.raises(ValueError, match="unknown partition mode"):
            net.set_partition({"asu0"}, 0.0, 1.0, mode="diagonal")
        with pytest.raises(ValueError, match="nonempty"):
            net.set_partition(set(), 0.0, 1.0)


# ---------------------------------------------------------------------------
# ViewService: epochs as fencing tokens
# ---------------------------------------------------------------------------
class TestViewService:
    def test_genesis(self):
        v = ViewService(["a", "b", "c"])
        assert v.epoch == 1 and v.members == {"a", "b", "c"}
        assert v.token("a") == v.fence("a") == 1
        assert v.validate("a") == 1

    def test_expel_freezes_token_and_rejects(self):
        v = ViewService(["a", "b", "c"])
        assert v.expel("b", now=1.0) == 2
        # Survivors learned the new epoch; the zombie froze at 1.
        assert v.token("a") == 2 and v.token("b") == 1
        with pytest.raises(StaleEpochError):
            v.validate("b")
        assert v.n_rejections == 1
        # Explicitly-stamped stale writes are rejected too.
        with pytest.raises(StaleEpochError):
            v.validate("a", token=0)

    def test_inflight_member_ops_survive_unrelated_changes(self):
        # a's in-flight op was stamped at epoch 1; expelling b bumps the
        # global epoch but must not invalidate a's token — a's fence is its
        # own admission epoch, which never moved.
        v = ViewService(["a", "b", "c"])
        tok = v.token("a")
        v.expel("b", now=1.0)
        assert v.validate("a", token=tok) == tok

    def test_readmission_fences_pre_expulsion_writes(self):
        v = ViewService(["a", "b", "c"])
        v.expel("b", now=1.0)
        stale = v.token("b")
        e = v.admit("b", now=2.0)
        assert e == 3 and v.fence("b") == 3 and v.token("b") == 3
        assert v.validate("b") == 3
        # The write the zombie queued before expulsion predates the new
        # admission epoch by construction: permanently invalid.
        with pytest.raises(StaleEpochError) as ei:
            v.validate("b", token=stale)
        assert ei.value.token == stale and ei.value.fence == 3

    def test_expel_admit_idempotent(self):
        v = ViewService(["a", "b"])
        v.expel("b", now=1.0)
        assert v.expel("b", now=1.1) == 2  # no double bump
        v.admit("b", now=2.0)
        assert v.admit("b", now=2.1) == 3
        assert len(v.history) == 3  # genesis + expel + admit

    def test_unknown_node_never_validates(self):
        v = ViewService(["a"])
        with pytest.raises(StaleEpochError):
            v.validate("ghost")

    def test_metrics_gauges_track_view(self):
        m = MetricsRegistry()
        v = ViewService(["a", "b"], metrics=m)
        v.expel("a", now=1.0)
        assert m.gauge("repro_view_epoch").value == 2.0
        assert m.gauge("repro_view_members").value == 1.0
        with pytest.raises(StaleEpochError):
            v.validate("a")
        assert m.counter("repro_epoch_rejections_total").value == 1


# ---------------------------------------------------------------------------
# network-mode failure detection
# ---------------------------------------------------------------------------
#: binary-exact cadence so beat and sweep instants are representable floats
ND = dict(mode="network", interval=0.0625, timeout=0.25, probe_timeout=0.25)


class TestNetworkDetector:
    def test_fault_free_run_stays_quiet(self):
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, **ND)
        det.start()
        plat.sim.run(until=3.0)
        det.stop()
        assert det.detected == {}
        assert all(s == ALIVE for s in det.state.values())

    def test_crash_is_confirmed_within_latency_bound(self):
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, **ND)
        det.start()
        Injector(plat, FaultPlan([crash_asu(0.4, 2)])).arm()
        plat.sim.run(until=3.0)
        det.stop()
        assert det.state["asu2"] == CONFIRMED
        assert det.detected["asu2"] - 0.4 <= det.latency_bound

    def test_symmetric_cut_expels_then_readmits_on_heal(self):
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, **ND)
        events = []
        det.on_failure.append(lambda n, t: events.append(("fail", n.node_id, t)))
        det.on_readmit.append(lambda n, t: events.append(("readmit", n.node_id, t)))
        det.start()
        Injector(plat, FaultPlan([partition(0.5, [1], duration=1.5)])).arm()
        plat.sim.run(until=5.0)
        det.stop()
        # Confirmed during the cut (the node is alive but silent on every
        # relay path), then cleared when its heartbeats resumed at the heal.
        kinds = [e[0] for e in events]
        assert kinds == ["fail", "readmit"]
        assert events[0][1] == "asu1" and plat.asus[1].alive
        assert det.state["asu1"] == ALIVE and "asu1" not in det.detected

    def test_in_cut_never_suspects(self):
        # majority->minority severed: the minority's outbound heartbeats
        # still flow, so a network detector must stay completely quiet.
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, **ND)
        det.start()
        Injector(
            plat, FaultPlan([partition(0.5, [1], duration=1.5, asymmetry="in")])
        ).arm()
        plat.sim.run(until=5.0)
        det.stop()
        assert det.detected == {} and det.state["asu1"] == ALIVE

    def test_anchor_target_drop_is_unreachable_not_confirmed(self):
        # Sever only the anchor<->target pair: heartbeats die, but an
        # indirect probe through any relay completes — proof of life, no
        # takeover.  This is exactly the asymmetry SWIM probing exists for.
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, **ND)
        det.start()
        net = plat.network
        net.set_msg_fault("host0", "asu1", "drop_msg", 0.5, 3.0)
        seen = []
        plat.sim.schedule_callback(
            lambda: seen.append(det.state["asu1"]), delay=2.5
        )
        plat.sim.run(until=5.0)
        det.stop()
        assert seen == [UNREACHABLE]
        assert "asu1" not in det.detected  # never confirmed, no callbacks
        assert det.state["asu1"] == ALIVE  # direct path healed at t=3

    def test_majority_guard_quarantines_minority_anchor(self):
        # Cut the anchor itself off: every other node goes silent at once.
        # Confirming them all would expel the world — the guard must hold.
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, **ND)
        det.start()
        Injector(plat, FaultPlan([partition(0.5, [], hosts=[0], duration=3.0)])).arm()
        plat.sim.run(until=4.0)
        det.stop()
        assert det.n_quarantine_holds > 0
        assert sum(1 for s in det.state.values() if s == CONFIRMED) * 2 <= len(
            det.nodes
        )

    def test_suspected_gauge_tracks_states(self):
        m = MetricsRegistry()
        plat = ActivePlatform(small_params(), metrics=m)
        det = FailureDetector(plat, **ND)
        det.start()
        Injector(plat, FaultPlan([partition(0.5, [1], duration=1.0)])).arm()
        peaks = []
        plat.sim.schedule_callback(
            lambda: peaks.append(m.gauge("repro_failures_suspected").value),
            delay=0.9,  # mid-cut: suspected or unreachable
        )
        plat.sim.run(until=4.0)
        det.stop()
        assert peaks == [1.0]
        assert m.gauge("repro_failures_suspected").value == 0.0

    def test_clear_readmits_and_unnans_gauges(self):
        m = MetricsRegistry()
        plat = ActivePlatform(small_params(), metrics=m)
        g = m.gauge("probe_gauge", owner="asu1", node="asu1")
        g.set(7.0)
        det = FailureDetector(plat, interval=0.0625, timeout=0.25)
        det.start()
        det.declare_failed(plat.asus[1])
        # Dead owners sample NaN (absent), not a frozen last-known value.
        assert g.dead and np.isnan(g.sample(plat.sim.now))
        det.clear(plat.asus[1])
        det.stop()
        assert "asu1" not in det.detected and det.state["asu1"] == ALIVE
        assert not g.dead and g.sample(plat.sim.now) == 7.0
        assert m.counter("repro_failures_cleared_total").value == 1

    def test_stop_interrupts_beaters_and_probes(self):
        # Satellite regression: a stopped detector must leave no perpetual
        # processes behind — the sim drains to queue exhaustion afterwards.
        plat = ActivePlatform(small_params())
        det = FailureDetector(plat, **ND)
        det.start()
        Injector(plat, FaultPlan([partition(0.5, [1], duration=10.0)])).arm()
        plat.sim.run(until=2.0)  # mid-cut: probes are in flight / stalled
        det.stop()
        before = plat.sim.now
        plat.sim.run()  # queue exhaustion, not until=: nothing may linger
        assert plat.sim.now - before < 1.0
        assert all(p.triggered for p in det._beaters)
        assert all(p.triggered for p in det._procs)
        assert det._monitor.triggered
        det.stop()  # idempotent

    def test_timer_mode_registers_no_suspected_gauge(self):
        # Timer-mode runs must keep byte-identical metric exports.
        m = MetricsRegistry()
        plat = ActivePlatform(small_params(), metrics=m)
        det = FailureDetector(plat, interval=0.05, timeout=0.2)
        assert det._g_suspected is None


# ---------------------------------------------------------------------------
# end-to-end: partitioned sort, byte-identical output
# ---------------------------------------------------------------------------
N = 1 << 12


def make_partition_job(faults, t0, **over):
    params = small_params()
    cfg = DSMConfig.for_n(N, alpha=8, gamma=16)
    defaults = dict(
        policy="sr", seed=0, faults=faults,
        transport="reliable",
        retry_policy=RetryPolicy(timeout=t0 / 50, window=64),
        replication=ReplicationConfig(r=2),
        heartbeat_interval=t0 / 40, heartbeat_timeout=t0 / 10,
        detection_mode="network", probe_timeout=t0 / 10,
    )
    defaults.update(over)
    return DsmSortJob(params, cfg, **defaults)


@pytest.fixture(scope="module")
def partition_t0():
    """Fault-free makespan of the replicated network-detection path."""
    job = make_partition_job(FaultPlan(), t0=1.0)
    res = job.run_pass1()
    return res.makespan


class TestEndToEndPartition:
    def test_long_cut_expels_heals_and_stays_byte_identical(self, partition_t0):
        t0 = partition_t0
        plan = FaultPlan([partition(0.25 * t0, [1], duration=0.5 * t0)])
        job = make_partition_job(plan, t0)
        res = job.run_pass1(deadline=20.0 * t0)
        assert res.completed
        # The cut outlives the detection horizon: expulsion, then heal-time
        # re-admission under a fresh epoch (genesis=1, expel=2, admit=3).
        assert res.n_readmitted >= 1 and res.view_epoch >= 3
        job.run_pass2()
        job.verify()
        ref = sort_records(concat_records(job.asu_data, job.params.schema))
        assert np.array_equal(job.collected_output(), ref)

    def test_zombie_out_cut_is_fenced(self, partition_t0):
        # Asymmetric "out": the minority hears the world but cannot ack —
        # the classic zombie.  Its writes must be rejected with stale epochs
        # and the output must still be byte-identical.
        t0 = partition_t0
        plan = FaultPlan(
            [partition(0.25 * t0, [1], duration=0.5 * t0, asymmetry="out")]
        )
        job = make_partition_job(plan, t0)
        res = job.run_pass1(deadline=20.0 * t0)
        assert res.completed
        assert res.n_epoch_rejections > 0  # fencing actually exercised
        job.run_pass2()
        job.verify()
        ref = sort_records(concat_records(job.asu_data, job.params.schema))
        assert np.array_equal(job.collected_output(), ref)

    def test_partitioned_run_is_deterministic(self, partition_t0):
        t0 = partition_t0

        def one():
            plan = FaultPlan([partition(0.25 * t0, [1], duration=0.5 * t0)])
            job = make_partition_job(plan, t0)
            res = job.run_pass1(deadline=20.0 * t0)
            return (
                res.makespan,
                job.platform.sim.n_events_processed,
                res.view_epoch,
                res.n_epoch_rejections,
            )

        assert one() == one()
