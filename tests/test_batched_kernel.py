"""Regression tests for the batched event kernel and its accounting fixes.

Covers the semantics the bucketed same-timestamp drain must preserve exactly
(FIFO ``_seq`` order, composite conditions over processed events,
``schedule_callback`` vs same-time ``Timeout`` ordering, ``stop()``
mid-batch), the ``run(until=)`` clock fix, the open-interval
``utilization_series`` fix, the amortized ``IntervalAccumulator.insert``,
the vectorized ``charge_batch`` paths, and the parallel sweep harness.
"""

import random

import pytest

from repro.sim import SimError, Simulator
from repro.sim.monitor import BusyTracker
from repro.util.stats import IntervalAccumulator


@pytest.fixture
def sim():
    return Simulator()


class TestRunUntilClock:
    """Satellite 1: both exits of run(until=) leave the clock at ``until``."""

    def test_queue_drains_before_until(self, sim):
        sim.timeout(2.0)
        sim.run(until=10.0)
        # The queue drained at t=2; nothing can happen before t=10, so the
        # clock must still advance to the horizon.
        assert sim.now == 10.0

    def test_early_break_before_next_event(self, sim):
        fired = []
        sim.schedule_callback(lambda: fired.append(sim.now), delay=5.0)
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert fired == []
        # The pending event is untouched and fires on a later run.
        sim.run()
        assert fired == [5.0]

    def test_until_exactly_at_next_event(self, sim):
        sim.timeout(3.0)
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_run_without_until_stays_at_last_event(self, sim):
        sim.timeout(2.0)
        sim.run()
        assert sim.now == 2.0

    def test_empty_queue_advances_to_until(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0


class TestSameInstantSemantics:
    """Satellite 4: ordering guarantees within one drained batch."""

    def test_seq_fifo_within_batch(self, sim):
        order = []
        for i in range(5):
            sim.schedule_callback(lambda i=i: order.append(i), delay=1.0)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_zero_delay_post_joins_batch_tail(self, sim):
        order = []

        def first():
            order.append("first")
            # Posted while the t=1 batch drains: runs after 'second', at the
            # batch tail — exactly where the (t, seq) heap would put it.
            sim.schedule_callback(lambda: order.append("tail"))

        sim.schedule_callback(first, delay=1.0)
        sim.schedule_callback(lambda: order.append("second"), delay=1.0)
        sim.run()
        assert order == ["first", "second", "tail"]

    def test_schedule_callback_orders_with_same_time_timeouts(self, sim):
        order = []
        t1 = sim.timeout(1.0)
        t1.callbacks.append(lambda _e: order.append("t1"))
        sim.schedule_callback(lambda: order.append("cb"), delay=1.0)
        t2 = sim.timeout(1.0)
        t2.callbacks.append(lambda _e: order.append("t2"))
        sim.run()
        # Strict post order at t=1: timeout t1, callback, timeout t2.
        assert order == ["t1", "cb", "t2"]

    def test_any_of_over_processed_constituents(self, sim):
        ev = sim.event()
        ev.succeed("v")
        sim.run()
        assert ev.processed

        def waiter():
            got = yield sim.any_of([ev])
            return got

        p = sim.process(waiter())
        sim.run()
        assert p.value == {ev: "v"}

    def test_all_of_over_processed_including_failed(self, sim):
        ok_ev = sim.event()
        ok_ev.succeed(1)
        bad_ev = sim.event()
        boom = RuntimeError("boom")
        bad_ev.fail(boom)
        # Consume the failure through a waiter so run() does not re-raise.
        def eat():
            try:
                yield bad_ev
            except RuntimeError:
                pass

        sim.process(eat())
        sim.run()
        assert ok_ev.processed and bad_ev.processed

        def waiter():
            try:
                yield sim.all_of([ok_ev, bad_ev])
            except RuntimeError as exc:
                return ("failed", exc)

        p = sim.process(waiter())
        sim.run()
        assert p.value == ("failed", boom)

    def test_stop_mid_batch_preserves_rest_of_batch(self, sim):
        order = []
        sim.schedule_callback(lambda: order.append("a"), delay=1.0)

        def stopper():
            order.append("stop")
            sim.stop("halted")

        sim.schedule_callback(stopper, delay=1.0)
        sim.schedule_callback(lambda: order.append("b"), delay=1.0)
        got = sim.run()
        assert got == "halted"
        assert order == ["a", "stop"]
        # The partially drained batch survives; resuming processes 'b' at
        # the same instant, before anything later.
        sim.schedule_callback(lambda: order.append("later"), delay=5.0)
        sim.run()
        assert order == ["a", "stop", "b", "later"]
        assert sim.now == 6.0

    def test_step_resumes_partial_batch(self, sim):
        order = []
        for i in range(3):
            sim.schedule_callback(lambda i=i: order.append(i), delay=1.0)
        sim.step()
        assert order == [0]
        sim.step()
        sim.step()
        assert order == [0, 1, 2]
        with pytest.raises(IndexError):
            sim.step()


class TestUtilizationSeriesOpenInterval:
    """Satellite 2: the segment in flight at t_end is not under-reported."""

    def test_open_interval_counted(self, sim):
        bt = BusyTracker(sim, name="dev")
        sim.schedule_callback(bt.begin, delay=1.0)
        sim.run()
        sim.timeout(3.0)
        sim.run()  # now = 4.0, segment open since t=1
        series = bt.utilization_series(t_end=4.0, dt=1.0)
        assert [u for _t, u in series] == pytest.approx([0.0, 1.0, 1.0, 1.0])
        # Consistent with the already-correct cumulative gauge.
        assert bt.utilization_at(4.0) == pytest.approx(3.0 / 4.0)

    def test_matches_closed_interval_series(self, sim):
        open_bt = BusyTracker(sim, name="open")
        closed_bt = BusyTracker(sim, name="closed")
        sim.schedule_callback(open_bt.begin, delay=0.5)
        sim.schedule_callback(closed_bt.begin, delay=0.5)
        sim.run()
        sim.timeout(2.5)
        sim.run()  # now = 3.0
        closed_bt.end()
        assert open_bt.utilization_series(t_end=3.0, dt=1.0) == (
            closed_bt.utilization_series(t_end=3.0, dt=1.0)
        )

    def test_closed_tracker_series_unchanged(self, sim):
        bt = BusyTracker(sim, name="dev")
        bt.begin()
        sim.timeout(1.0)
        sim.run()
        bt.end()
        series = bt.utilization_series(t_end=2.0, dt=1.0)
        assert [u for _t, u in series] == pytest.approx([1.0, 0.0])


def _eager_reference(ops):
    """Reference IntervalAccumulator with the eager O(n) splice semantics."""
    from bisect import bisect_right

    starts, ends = [], []
    total = 0.0
    for start, end in ops:
        i = bisect_right(starts, start)
        starts.insert(i, start)
        ends.insert(i, end)
        total += end - start
    return starts, ends, total


class TestAmortizedInsert:
    """Satellite 3: pending-buffer insert matches the eager splice exactly."""

    def test_matches_eager_reference_on_random_ops(self):
        rng = random.Random(7)
        acc = IntervalAccumulator()
        ops = []
        for _ in range(300):
            start = rng.uniform(0.0, 100.0)
            end = start + rng.uniform(0.0, 5.0)
            ops.append((start, end))
            acc.insert(start, end)
            if rng.random() < 0.1:
                # Interleaved queries force mid-stream flushes.
                w0 = rng.uniform(0.0, 100.0)
                acc.busy_in(w0, w0 + rng.uniform(0.0, 10.0))
        ref_starts, ref_ends, ref_total = _eager_reference(ops)
        assert acc.starts == ref_starts
        assert acc.ends == ref_ends
        assert acc.total_busy == pytest.approx(ref_total)
        assert acc.busy_in(0.0, 200.0) == pytest.approx(ref_total)

    def test_tie_order_is_stable(self):
        acc = IntervalAccumulator()
        acc.add(5.0, 6.0)
        acc.insert(2.0, 2.5)
        acc.insert(2.0, 3.0)
        acc.insert(2.0, 2.25)
        assert acc.starts == [2.0, 2.0, 2.0, 5.0]
        assert acc.ends == [2.5, 3.0, 2.25, 6.0]

    def test_total_busy_needs_no_flush(self):
        acc = IntervalAccumulator()
        acc.add(5.0, 6.0)
        acc.insert(1.0, 2.0)
        assert acc.total_busy == pytest.approx(2.0)
        assert acc._pending  # still buffered
        assert acc.busy_in(0.0, 10.0) == pytest.approx(2.0)
        assert not acc._pending

    def test_add_out_of_order_still_rejected(self):
        acc = IntervalAccumulator()
        acc.add(5.0, 6.0)
        acc.insert(1.0, 2.0)
        with pytest.raises(ValueError):
            acc.add(3.0, 4.0)
        with pytest.raises(ValueError):
            acc.insert(3.0, 2.0)


class TestChargeBatch:
    """Tentpole (b): vectorized charge paths are bit-identical to scalar."""

    def test_cpu_charge_batch(self, sim):
        from repro.emulator.cpu import Cpu
        from repro.emulator.params import SystemParams

        cpu = Cpu(sim, clock_hz=7.3e8, params=SystemParams())
        cpu.set_speed(0.9)
        cycles = [0.0, 1.0, 12345.678, 9e12]
        batch = cpu.charge_batch(cycles)
        assert [float(x) for x in batch] == [cpu.seconds_for(c) for c in cycles]

    def test_disk_transfer_time_batch(self, sim):
        from repro.emulator.disk import Disk

        disk = Disk(sim, rate=3.1e7)
        sizes = [0, 1, 4096, 10**9]
        batch = disk.transfer_time_batch(sizes)
        assert [float(x) for x in batch] == [disk.transfer_time(n) for n in sizes]

    def test_link_transfer_time_batch(self, sim):
        from repro.emulator.net import Link

        link = Link(sim, bandwidth=1.25e8, latency=1e-4)
        sizes = [0, 17, 65536]
        batch = link.transfer_time_batch(sizes)
        assert [float(x) for x in batch] == [link.transfer_time(n) for n in sizes]

    def test_functor_cost_cycles_batch(self):
        from repro.emulator.params import SystemParams
        from repro.functors.blocksort import BlockSortFunctor

        params = SystemParams()
        f = BlockSortFunctor(beta=1024)
        ns = [0, 1, 7, 1024]
        batch = f.cost_cycles_batch(ns, params)
        assert [float(x) for x in batch] == [f.cost_cycles(n, params) for n in ns]


def _square(x):
    return x * x


class TestParallelSweeps:
    """Tentpole (c): deterministic merge order at any worker count."""

    def test_results_in_input_order(self):
        from repro.bench.parallel import parallel_map

        items = list(range(20))
        assert parallel_map(_square, items, workers=1) == [x * x for x in items]
        assert parallel_map(_square, items, workers=4) == [x * x for x in items]

    def test_resolve_workers_env(self, monkeypatch):
        from repro.bench.parallel import resolve_workers

        monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2
        monkeypatch.delenv("REPRO_BENCH_WORKERS")
        assert resolve_workers() >= 1

    def test_worker_exception_propagates(self):
        from repro.bench.parallel import parallel_map

        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0], workers=2)


def _reciprocal(x):
    return 1 / x
