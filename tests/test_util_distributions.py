"""Tests for workload generators."""

import numpy as np
import pytest

from repro.util.distributions import (
    KEY_DISTRIBUTIONS,
    exponential_keys,
    half_uniform_half_exponential,
    make_workload,
    uniform_keys,
)
from repro.util.records import DEFAULT_SCHEMA
from repro.util.rng import RngRegistry


@pytest.fixture
def rng():
    return RngRegistry(seed=7).get("workload")


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(KEY_DISTRIBUTIONS))
    def test_all_generators_produce_n_keys_in_range(self, rng, name):
        keys = KEY_DISTRIBUTIONS[name](rng, 1000)
        assert keys.shape == (1000,)
        assert keys.dtype == np.dtype(DEFAULT_SCHEMA.key_dtype)
        # uint keys are nonnegative by construction; check the upper bound.
        assert int(keys.max()) <= DEFAULT_SCHEMA.key_max

    def test_uniform_spans_range(self, rng):
        keys = uniform_keys(rng, 20000)
        # Quartile counts roughly equal for uniform keys.
        hist, _ = np.histogram(keys, bins=4, range=(0, DEFAULT_SCHEMA.key_max))
        assert hist.min() > 0.8 * hist.max()

    def test_exponential_is_skewed_low(self, rng):
        keys = exponential_keys(rng, 20000, scale=0.1)
        median = np.median(keys.astype(np.float64))
        assert median < 0.15 * DEFAULT_SCHEMA.key_max

    def test_half_and_half_structure(self, rng):
        keys = half_uniform_half_exponential(rng, 10000)
        first, second = keys[:5000].astype(np.float64), keys[5000:].astype(np.float64)
        # The uniform half has a much larger mean than the exponential half.
        assert first.mean() > 2.5 * second.mean()

    def test_determinism(self):
        a = uniform_keys(RngRegistry(3).get("w"), 100)
        b = uniform_keys(RngRegistry(3).get("w"), 100)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        r = RngRegistry(3)
        a = uniform_keys(r.get("a"), 100)
        b = uniform_keys(r.get("b"), 100)
        assert not np.array_equal(a, b)


class TestMakeWorkload:
    def test_returns_records(self, rng):
        batch = make_workload(rng, 50, "uniform")
        assert batch.dtype == DEFAULT_SCHEMA.dtype
        assert batch.shape == (50,)

    def test_unknown_distribution(self, rng):
        with pytest.raises(ValueError, match="unknown distribution"):
            make_workload(rng, 10, "nope")

    def test_kwargs_forwarded(self, rng):
        batch = make_workload(rng, 1000, "exponential", scale=0.01)
        assert np.median(batch["key"].astype(np.float64)) < 0.05 * DEFAULT_SCHEMA.key_max
