"""Tests for the DSM configuration solver, routing policies, placement, and
the load manager."""

import numpy as np
import pytest

from repro.core import (
    ConfigSolver,
    DSMConfig,
    JoinShortestQueue,
    LoadManager,
    Placement,
    PlacementSolver,
    RoundRobin,
    SimpleRandomization,
    StaticPartition,
    WeightedCapacity,
    make_router,
)
from repro.emulator.params import SystemParams
from repro.functors import BlockSortFunctor, Dataflow, DistributeFunctor, FunctorError, MergeFunctor
from repro.util.units import MB


@pytest.fixture
def params():
    return SystemParams(
        n_hosts=1,
        n_asus=16,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
    )


class TestDSMConfig:
    def test_for_n_identity(self):
        cfg = DSMConfig.for_n(1 << 20, alpha=16, gamma=64)
        assert cfg.alpha * cfg.beta * cfg.gamma == 1 << 20

    def test_work_per_record_is_log_n(self):
        cfg = DSMConfig.for_n(1 << 20, alpha=16, gamma=64)
        assert cfg.work_per_record_log == pytest.approx(20.0)

    def test_gamma_split(self):
        cfg = DSMConfig(n_records=1000, alpha=4, beta=8, gamma=8, gamma1=2)
        assert cfg.merge_host_fan_in == 4

    def test_bad_gamma_split_rejected(self):
        with pytest.raises(ValueError):
            DSMConfig(n_records=10, alpha=1, beta=1, gamma=8, gamma1=3)

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            DSMConfig(n_records=10, alpha=0, beta=1, gamma=1)
        with pytest.raises(ValueError):
            DSMConfig.for_n(0, alpha=1, gamma=1)

    def test_describe(self):
        assert "alpha=16" in DSMConfig.for_n(1 << 16, 16, 16).describe()


class TestConfigSolver:
    def test_alpha_bounded_by_asu_memory(self, params):
        solver = ConfigSolver(params.with_(asu_mem=1 * MB))
        # 1 MiB / 32 KiB bucket buffers = 32 buckets max.
        assert solver.max_alpha() == 32
        assert max(solver.feasible_alphas()) == 32

    def test_feasible_alphas_powers_of_two(self, params):
        solver = ConfigSolver(params)
        alphas = solver.feasible_alphas()
        assert alphas[0] == 1
        assert all(b == 2 * a for a, b in zip(alphas, alphas[1:]))

    def test_beta_respects_host_memory(self, params):
        tiny_host = params.with_(host_mem=128 * 100)  # 100 records
        solver = ConfigSolver(tiny_host)
        assert solver.beta_for(1 << 20, alpha=1) == 100

    def test_adaptive_alpha_grows_with_asus(self, params):
        few = ConfigSolver(params.with_(n_asus=2)).choose(1 << 20)
        many = ConfigSolver(params.with_(n_asus=64)).choose(1 << 20)
        # More ASU power -> shift more work to the distribute phase.
        assert many.alpha > few.alpha

    def test_adaptive_beats_fixed_configs(self, params):
        solver = ConfigSolver(params.with_(n_asus=32))
        best = solver.choose(1 << 20)
        s_best = solver.predicted_speedup(best)
        for alpha in (1, 4, 16):
            cfg = solver.config_for_alpha(1 << 20, alpha)
            assert s_best >= solver.predicted_speedup(cfg) - 1e-9


class TestRouters:
    def test_static_partition_halves(self):
        r = StaticPartition(n_instances=2, n_buckets=8)
        assert [r.choose(b, 1) for b in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_static_bucket_range_checked(self):
        r = StaticPartition(2, 4)
        with pytest.raises(ValueError):
            r.choose(4, 1)

    def test_round_robin_cycles(self):
        r = RoundRobin(3)
        assert [r.choose(0, 1) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_sr_balances_in_expectation(self):
        r = SimpleRandomization(2, rng=np.random.default_rng(1))
        counts = np.zeros(2)
        for _ in range(2000):
            counts[r.choose(0, 1)] += 1
        assert abs(counts[0] - counts[1]) < 200

    def test_sr_deterministic_with_seed(self):
        a = SimpleRandomization(4, rng=np.random.default_rng(9))
        b = SimpleRandomization(4, rng=np.random.default_rng(9))
        assert [a.choose(0, 1) for _ in range(50)] == [b.choose(0, 1) for _ in range(50)]

    def test_jsq_prefers_idle_instance(self):
        r = JoinShortestQueue(2)
        i = r.choose(0, 10)
        r.on_sent(i, 10)
        j = r.choose(0, 10)
        assert j != i
        r.on_completed(i, 10)
        assert r.choose(0, 1) == i  # freed up again (tie -> argmin first)

    def test_weighted_tracks_capacity(self):
        r = WeightedCapacity([3.0, 1.0])
        for _ in range(400):
            inst = r.choose(0, 1)
            r.on_sent(inst, 1)
        assert r.sent[0] == pytest.approx(300, abs=5)

    def test_weighted_needs_positive_weights(self):
        with pytest.raises(ValueError):
            WeightedCapacity([1.0, 0.0])

    def test_imbalance_metric(self):
        r = RoundRobin(2)
        r.on_sent(0, 100)
        r.on_sent(1, 100)
        assert r.imbalance() == pytest.approx(1.0)
        r.on_sent(0, 200)
        assert r.imbalance() > 1.0

    def test_factory(self):
        assert make_router("static", 2, n_buckets=4).name == "static"
        assert make_router("sr", 2).name == "sr"
        assert make_router("jsq", 2).name == "jsq"
        assert make_router("weighted", 2, weights=[1, 2]).name == "weighted"
        with pytest.raises(ValueError):
            make_router("psychic", 2)
        with pytest.raises(ValueError):
            make_router("weighted", 2)


class TestPlacement:
    def _graph(self):
        g = Dataflow()
        g.add_stage("distribute", DistributeFunctor.uniform(16), est_records=1000)
        g.add_stage("blocksort", BlockSortFunctor(1024), est_records=1000)
        g.add_stage("merge", MergeFunctor(8), est_records=1000)
        g.connect(Dataflow.SOURCE, "distribute", kind="set")
        g.connect("distribute", "blocksort", kind="set")
        g.connect("blocksort", "merge", kind="set")
        return g

    def _placement(self, params):
        p = Placement()
        p.assign("distribute", "asu", list(range(params.n_asus)))
        p.assign("blocksort", "host", [0])
        p.assign("merge", "host", [0])
        return p

    def test_valid_dsm_placement(self, params):
        g, p = self._graph(), self._placement(params)
        # distribute/blocksort replicable; many instances needs replicas>1
        g.stages["distribute"].replicas = params.n_asus
        PlacementSolver(params).validate(g, p)

    def test_asu_ineligible_functor_rejected(self, params):
        g = self._graph()
        g.stages["distribute"].replicas = params.n_asus
        g.stages["blocksort"].functor = BlockSortFunctor(1 << 22)  # 512 MiB state
        p = self._placement(params)
        p.assign("blocksort", "asu", [0])
        with pytest.raises(FunctorError, match="cannot run on ASUs"):
            PlacementSolver(params).validate(g, p)

    def test_unplaced_stage_rejected(self, params):
        g = self._graph()
        p = Placement()
        with pytest.raises(FunctorError, match="no placement"):
            PlacementSolver(params).validate(g, p)

    def test_out_of_range_instance_rejected(self, params):
        g, p = self._graph(), self._placement(params)
        g.stages["distribute"].replicas = 99
        p.assign("distribute", "asu", [99])
        with pytest.raises(FunctorError, match="out of range"):
            PlacementSolver(params).validate(g, p)

    def test_multi_instance_without_replicas_rejected(self, params):
        g, p = self._graph(), self._placement(params)
        p.assign("merge", "host", [0, 0])
        with pytest.raises(FunctorError, match="single instance"):
            PlacementSolver(params).validate(g, p)

    def test_load_split_and_balance(self, params):
        g, p = self._graph(), self._placement(params)
        solver = PlacementSolver(params)
        split = solver.load_split(g, p)
        assert split["asu"] > 0 and split["host"] > 0
        score = solver.balance_score(g, p)
        assert 0.0 < score <= 1.0


class TestLoadManager:
    def test_routing_and_feedback(self, params):
        lm = LoadManager(params, n_instances=2, n_buckets=8, policy="jsq")
        i = lm.route(bucket=0, n_records=100)
        assert lm.backlogs()[i] == 100
        lm.complete(i, 100)
        assert lm.backlogs()[i] == 0

    def test_imbalance_under_static_skew(self, params):
        lm = LoadManager(params, n_instances=2, n_buckets=8, policy="static")
        for _ in range(100):
            lm.route(bucket=0, n_records=10)  # all to instance 0
        assert lm.imbalance() == pytest.approx(2.0)

    def test_sr_fixes_skew(self, params):
        rng = np.random.default_rng(3)
        lm = LoadManager(params, n_instances=2, n_buckets=8, policy="sr", rng=rng)
        for _ in range(1000):
            lm.route(bucket=0, n_records=10)
        assert lm.imbalance() < 1.1

    def test_reconfigure_returns_feasible_config(self, params):
        lm = LoadManager(params, n_instances=1, n_buckets=1)
        cfg = lm.reconfigure(1 << 20)
        solver = ConfigSolver(params)
        assert cfg.alpha in solver.feasible_alphas()
