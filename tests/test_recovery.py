"""Tests for repro.recovery: manifest, checkpoint/restart, speculation, supervisor.

The tentpole proof lives here: a DSM-Sort killed at *any* seeded instant and
resumed from its write-ahead manifest produces output byte-identical to an
uninterrupted run — without re-reading completed shards — and the straggler
speculator's hedged replicas improve makespan on a degraded platform without
ever introducing a duplicate record.
"""

import json

import numpy as np
import pytest

from repro.core import Placement, PipelineJob
from repro.core.config import DSMConfig
from repro.dsmsort.runtime import DsmSortJob
from repro.emulator.params import SystemParams
from repro.faults.injector import FaultPlan, degrade_asu
from repro.functors import Dataflow, MapFunctor
from repro.recovery import (
    ESCALATION_LADDER,
    CheckpointError,
    JobSupervisor,
    RecoverableSort,
    RestartBudget,
    RunManifest,
    SpeculationPolicy,
    crash_coordinator,
    digest_records,
)
from repro.util.records import make_records


def small_params(**over):
    """4 ASUs / 2 hosts with 128-record blocks: fine-grained durability so a
    mid-run kill always leaves a meaningful manifest frontier."""
    base = dict(
        n_hosts=2,
        n_asus=4,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=128,
    )
    base.update(over)
    return SystemParams(**base)


def small_config(n=1 << 12):
    return DSMConfig.for_n(n, alpha=8, gamma=8)


def run_uninterrupted(params, cfg, *, seed=0, manifest=None):
    """One fault-free two-pass sort; returns (makespan, output, job)."""
    faults = FaultPlan() if manifest is not None else None
    job = DsmSortJob(params, cfg, policy="sr", seed=seed, faults=faults,
                     manifest=manifest)
    r1 = job.run_pass1()
    r2 = job.run_pass2()
    job.verify()
    return r1.makespan + r2.makespan, job.collected_output(), job


def batch(keys):
    from repro.util.records import DEFAULT_SCHEMA

    return make_records(np.asarray(keys, dtype=np.uint32), DEFAULT_SCHEMA)


# ---------------------------------------------------------------- manifest
class TestRunManifest:
    def test_block_and_shard_logs_dedupe(self):
        m = RunManifest()
        m.log_block(0, 0, [(1, 3)])
        m.log_block(0, 0, [(1, 3)])
        m.log_shard_done(0, n_blocks=1)
        m.log_shard_done(0, n_blocks=1)
        assert [e["op"] for e in m.entries] == ["block", "shard"]

    def test_run_durable_requires_registration(self):
        m = RunManifest()
        with pytest.raises(CheckpointError, match="never registered"):
            m.log_run_durable(0, dest=1, payload=batch([1, 2]))

    def test_latest_run_entry_wins_on_rereplication(self):
        m = RunManifest()
        rid = m.new_rid()
        payload = batch([3, 1, 2])
        m.register_run(rid, host=0, bucket=2, frag_keys=[(0, 0, 2)])
        m.log_run_durable(rid, dest=1, payload=payload)
        m.log_run_durable(rid, dest=3, payload=payload)  # re-replicated
        state = m.restore_state()
        assert len(state.live_runs) == 1
        _rid, host, bucket, dest, got = state.live_runs[0]
        assert (host, bucket, dest) == (0, 2, 3)
        assert np.array_equal(got, payload)
        assert state.covered == {(0, 0, 2)}

    def test_purges_revoke_live_runs(self):
        m = RunManifest()
        for rid, (h, d) in enumerate([(0, 1), (1, 2)]):
            m.new_rid()
            m.register_run(rid, host=h, bucket=0, frag_keys=[(rid, 0, 0)])
            m.log_run_durable(rid, dest=d, payload=batch([rid]))
        m.log_purge_asu(1)
        state = m.restore_state()
        assert [r[0] for r in state.live_runs] == [1]
        m.log_purge_host(1)
        assert m.restore_state().live_runs == []

    def test_digest_mismatch_refuses_restore(self):
        m = RunManifest()
        rid = m.new_rid()
        m.register_run(rid, host=0, bucket=0, frag_keys=[(0, 0, 0)])
        m.log_run_durable(rid, dest=0, payload=batch([1, 2, 3]))
        m._payloads[rid] = batch([9, 9, 9])  # bit-rot on the platter
        with pytest.raises(CheckpointError, match="digest mismatch"):
            m.restore_state()

    def test_duplicate_coverage_detected(self):
        m = RunManifest()
        for rid in range(2):
            m.new_rid()
            m.register_run(rid, host=rid, bucket=0, frag_keys=[(0, 0, 0)])
            m.log_run_durable(rid, dest=rid, payload=batch([rid]))
        with pytest.raises(CheckpointError, match="more than one live run"):
            m.check_no_duplicate_coverage()

    def test_json_round_trip_is_canonical(self):
        m = RunManifest()
        rid = m.new_rid()
        m.register_run(rid, host=1, bucket=3, frag_keys=[(2, 1, 3), (2, 2, 3)])
        m.log_run_durable(rid, dest=2, payload=batch([5, 6, 7]))
        m.log_block(2, 1, [(3, 2)])
        m.log_pass1_done(0.125)
        m.log_bucket_merged(3, batch([5, 6, 7]))
        text = m.to_json()
        m2 = RunManifest.from_json(text)
        assert m2.to_json() == text
        assert m2.pass1_complete()
        assert m2.bytes_logged == m.bytes_logged
        s1, s2 = m.restore_state(), m2.restore_state()
        assert len(s2.live_runs) == len(s1.live_runs) == 1
        assert np.array_equal(s2.live_runs[0][4], s1.live_runs[0][4])
        assert set(s2.merged) == {3}
        # new_rid continues past everything journaled, so resumed attempts
        # can never collide with restored run ids
        assert m2.new_rid() == m._next_rid

    def test_from_json_rejects_unknown_format(self):
        with pytest.raises(CheckpointError, match="unrecognized manifest format"):
            RunManifest.from_json(json.dumps({"format": "bogus/9"}))

    def test_report_summarises_frontier(self):
        m = RunManifest()
        rid = m.new_rid()
        m.register_run(rid, host=0, bucket=0, frag_keys=[(0, 0, 0)])
        m.log_run_durable(rid, dest=0, payload=batch([1, 2]))
        m.log_block(0, 0, [(0, 2)])
        rep = m.report()
        assert rep["n_live_runs"] == 1
        assert rep["n_durable_records"] == 2
        assert rep["n_blocks_complete"] == 1
        assert not rep["pass1_done"]


# ---------------------------------------------------- checkpoint / restart
class TestCheckpointRestart:
    def test_kill_at_any_instant_resumes_byte_identical(self):
        """The tentpole proof: for every kill instant the resumed output is
        byte-identical to the uninterrupted run, with zero duplicate
        fragment coverage in the manifest."""
        params, cfg = small_params(), small_config()
        t0, out_ref, _ = run_uninterrupted(params, cfg)
        for frac in (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.97):
            sort = RecoverableSort(params, cfg, seed=0, policy="sr")
            rep = sort.run_supervised(crashes=[frac * t0])
            assert rep.completed, f"kill at {frac:.2f}*T0 did not recover"
            assert rep.n_attempts == 2 and rep.n_crashes == 1
            sort.verify()
            assert np.array_equal(out_ref, sort.output()), (
                f"kill at {frac:.2f}*T0 diverged from the reference output"
            )
            sort.manifest.check_no_duplicate_coverage()

    def test_resume_skips_completed_shards(self):
        """A late pass-1 kill leaves most shards durable; the resumed attempt
        must re-read strictly less than a cold run (no full re-read)."""
        params, cfg = small_params(), small_config()
        cold = RecoverableSort(params, cfg, seed=0, policy="sr")
        r_cold = cold.attempt()
        assert r_cold.completed
        mk1_cold = r_cold.pass1.makespan
        sort = RecoverableSort(params, cfg, seed=0, policy="sr")
        first = sort.attempt(crash_at=0.9 * mk1_cold)
        assert first.crashed and first.phase == "pass1"
        state = sort.manifest.restore_state()
        assert state.n_durable > 0 and state.blocks_complete
        resumed = sort.attempt()
        assert resumed.completed
        # pass 1 of the resumed attempt is cheaper than a cold pass 1
        # because completed blocks are never re-read or re-shipped
        assert resumed.pass1.makespan < mk1_cold
        assert np.array_equal(cold.output(), sort.output())

    def test_crash_in_pass2_restores_pass1_from_manifest(self):
        params, cfg = small_params(), small_config()
        sort = RecoverableSort(params, cfg, seed=0, policy="sr")
        probe = sort.attempt()  # learn the pass boundaries
        assert probe.completed
        mk1, total = probe.pass1.makespan, probe.makespan
        crash_at = (mk1 + total) / 2  # squarely inside pass 2
        sort2 = RecoverableSort(params, cfg, seed=0, policy="sr")
        first = sort2.attempt(crash_at=crash_at)
        assert first.crashed and first.phase == "pass2"
        assert sort2.manifest.pass1_complete()
        resumed = sort2.attempt()
        assert resumed.completed and resumed.restored_pass1
        # some buckets merged before the kill are adopted, not re-merged
        assert resumed.pass2.n_restored_buckets >= 0
        assert np.array_equal(sort.output(), sort2.output())

    def test_crash_past_completion_is_a_noop(self):
        params, cfg = small_params(), small_config()
        sort = RecoverableSort(params, cfg, seed=0, policy="sr")
        rep = sort.run_supervised(crashes=[1e9])
        assert rep.completed and rep.n_attempts == 1 and rep.n_crashes == 0

    def test_manifest_output_identical_and_overhead_bounded(self):
        """Checkpointing must not perturb the result and must cost <2% of
        the simulated makespan (the journal is write-behind)."""
        params, cfg = small_params(), small_config()
        t_off, out_off, _ = run_uninterrupted(params, cfg)
        t_on, out_on, job = run_uninterrupted(
            params, cfg, manifest=RunManifest()
        )
        assert np.array_equal(out_off, out_on)
        assert job.manifest.pass1_complete()
        overhead = (t_on - t_off) / t_off
        assert overhead < 0.02, f"checkpoint overhead {overhead:.2%} >= 2%"

    def test_coordinator_fault_kind_validates(self):
        with pytest.raises(ValueError, match="index"):
            from repro.faults.injector import Fault

            Fault(t=0.1, kind="crash_coordinator", index=1)
        f = crash_coordinator(0.25)
        FaultPlan([f])  # registered kind: valid in a plan


# ------------------------------------------------------------- speculation
class TestSpeculation:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="interval"):
            SpeculationPolicy(interval=0.0)
        with pytest.raises(ValueError, match="quantile"):
            SpeculationPolicy(quantile=0.0)
        with pytest.raises(ValueError, match="ratio"):
            SpeculationPolicy(ratio=1.0)
        with pytest.raises(ValueError, match="jitter"):
            SpeculationPolicy(jitter=-0.1)

    def test_hedged_straggler_improves_makespan_exactly_once(self):
        """A heavily degraded ASU gets its shard hedged; makespan improves
        and the output stays an exact sorted permutation (no duplicates)."""
        params, cfg = small_params(), small_config(1 << 12)
        plan = FaultPlan([degrade_asu(0.001, 2, duration=0.5, factor=0.15)])

        base = DsmSortJob(params, cfg, policy="sr", seed=0, faults=plan)
        b1 = base.run_pass1()
        b2 = base.run_pass2()
        base.verify()
        mk_base = b1.makespan + b2.makespan

        policy = SpeculationPolicy(interval=0.002, warmup=0.004, seed=0)
        spec = DsmSortJob(
            params, cfg, policy="sr", seed=0, faults=plan, speculation=policy
        )
        s1 = spec.run_pass1()
        s2 = spec.run_pass2()
        spec.verify()  # sorted + exact multiset: hedges added no duplicates
        mk_spec = s1.makespan + s2.makespan

        assert s1.n_hedged_shards >= 1
        assert mk_spec < mk_base
        assert np.array_equal(base.collected_output(), spec.collected_output())
        actions = {s.action for s in spec._speculator.signals}
        assert "hedge" in actions

    def test_fault_free_speculation_is_inert(self):
        """On a healthy platform no replica lags: zero hedges, and the
        output matches the unspeculated baseline exactly."""
        params, cfg = small_params(), small_config(1 << 12)
        _t, out_ref, _ = run_uninterrupted(params, cfg)
        policy = SpeculationPolicy(interval=0.004, warmup=0.01, seed=0)
        job = DsmSortJob(
            params, cfg, policy="sr", seed=0, faults=FaultPlan(),
            speculation=policy,
        )
        r1 = job.run_pass1()
        job.run_pass2()
        job.verify()
        assert r1.n_hedged_shards == 0
        assert np.array_equal(out_ref, job.collected_output())

    def test_speculation_requires_fault_tolerant_path(self):
        params, cfg = small_params(), small_config()
        with pytest.raises(ValueError, match="fault-tolerant path"):
            DsmSortJob(
                params, cfg, policy="sr", seed=0,
                speculation=SpeculationPolicy(),
            )


# -------------------------------------------- executor straggler steering
class TestExecutorStragglerWatch:
    def _run(self, speculation):
        params = small_params(
            n_hosts=4, asu_ratio=8.0, block_records=1024,
            host_clock_multipliers=(1.0, 1.0, 1.0, 0.15),
        )
        per = (1 << 13) // params.n_asus
        data = [
            make_records(
                (np.arange(per, dtype=np.uint32) * params.n_asus + d),
                params.schema,
            )
            for d in range(params.n_asus)
        ]
        g = Dataflow()
        g.add_stage("bump", MapFunctor(lambda b: b), replicas=4)
        g.connect(Dataflow.SOURCE, "bump", kind="set")
        g.connect("bump", Dataflow.SINK, kind="set")
        p = Placement()
        p.assign("bump", "host", [0, 1, 2, 3])
        job = PipelineJob(params, g, p, data, seed=1, speculation=speculation)
        return job.run()

    def test_steers_around_slow_instance(self):
        base = self._run(None)
        spec = self._run(SpeculationPolicy(interval=0.001, warmup=0.003, seed=0))
        assert spec.makespan < base.makespan
        steered = [s for s in spec.straggler_signals if s.action == "steer"]
        assert 3 in {s.index for s in steered}  # the 0.15x host is flagged
        # steering moves work off the slow replica
        assert (
            spec.records_per_instance["bump"][3]
            < base.records_per_instance["bump"][3]
        )
        # routing changed, records did not
        assert sorted(spec.output["key"].tolist()) == sorted(
            base.output["key"].tolist()
        )

    def test_without_speculation_no_signals(self):
        base = self._run(None)
        assert base.straggler_signals == []


# -------------------------------------------------------------- supervisor
class TestJobSupervisor:
    def test_budget_validation_and_backoff(self):
        with pytest.raises(ValueError):
            RestartBudget(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartBudget(backoff0=-0.1)
        with pytest.raises(ValueError):
            RestartBudget(backoff_factor=0.5)
        b = RestartBudget(backoff0=0.1, backoff_factor=2.0, backoff_cap=0.5)
        assert [b.backoff(k) for k in (1, 2, 3, 4, 5)] == [
            0.1, 0.2, 0.4, 0.5, 0.5
        ]

    def test_escalation_ladder_then_abort(self):
        """Every attempt killed almost immediately: the supervisor walks
        retry -> replace -> restore and finally aborts with a report."""
        params, cfg = small_params(), small_config()
        sort = RecoverableSort(params, cfg, seed=0, policy="sr")
        budget = RestartBudget(max_restarts=3, backoff0=0.01)
        rep = sort.run_supervised(crashes=[1e-4] * 10, budget=budget)
        assert rep.aborted and not rep.completed
        assert rep.n_attempts == 4 and rep.n_crashes == 4
        assert [rung for _i, rung, _p in rep.actions] == [
            "retry", "replace", "restore"
        ]
        assert "restart budget exhausted" in rep.reason
        assert rep.manifest_report is not None
        assert rep.total_backoff == pytest.approx(0.01 + 0.02 + 0.04)
        assert ESCALATION_LADDER == ("retry", "replace", "restore", "abort")

    def test_restore_rung_round_trips_the_manifest(self):
        """The third consecutive failure cold-restores from serialized JSON;
        the job must still complete byte-identically afterwards."""
        params, cfg = small_params(), small_config()
        t0, out_ref, _ = run_uninterrupted(params, cfg)
        sort = RecoverableSort(params, cfg, seed=0, policy="sr")
        rep = sort.run_supervised(
            crashes=[0.5 * t0, 0.2 * t0, 0.2 * t0],
            budget=RestartBudget(max_restarts=5, backoff0=0.01),
        )
        assert rep.completed and rep.n_attempts == 4
        rungs = [rung for _i, rung, _p in rep.actions]
        assert rungs == ["retry", "replace", "restore"]
        assert np.array_equal(out_ref, sort.output())

    def test_supervised_single_crash_recovers_with_one_retry(self):
        params, cfg = small_params(), small_config()
        t0, out_ref, _ = run_uninterrupted(params, cfg)
        sort = RecoverableSort(params, cfg, seed=0, policy="sr")
        rep = sort.run_supervised(crashes=[0.6 * t0])
        assert rep.completed and not rep.aborted
        assert [rung for _i, rung, _p in rep.actions] == ["retry"]
        assert rep.total_virtual_time > sort.total_virtual_time  # backoff paid
        assert np.array_equal(out_ref, sort.output())
