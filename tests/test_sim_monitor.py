"""Tests for the simulation monitoring hooks (BusyTracker, ProgressCounter)."""

import pytest

from repro.sim import Simulator
from repro.sim.monitor import BusyTracker, ProgressCounter


def at(sim, t):
    """Advance the simulator clock to virtual time ``t``."""
    sim.schedule_callback(lambda: None, delay=t - sim.now)
    sim.run()


class TestBusyTracker:
    def test_records_busy_intervals(self):
        sim = Simulator()
        bt = BusyTracker(sim, name="disk")
        bt.begin()
        at(sim, 2.0)
        bt.end()
        at(sim, 4.0)
        assert bt.total_busy == 2.0
        assert bt.utilization() == pytest.approx(0.5)

    def test_double_begin_raises(self):
        bt = BusyTracker(Simulator(), name="cpu")
        bt.begin()
        with pytest.raises(RuntimeError, match="already busy"):
            bt.begin()

    def test_end_without_begin_raises(self):
        bt = BusyTracker(Simulator(), name="cpu")
        with pytest.raises(RuntimeError, match="not busy"):
            bt.end()

    def test_add_span_backdates_from_now(self):
        sim = Simulator()
        bt = BusyTracker(sim)
        at(sim, 3.0)
        bt.add_span(1.0)  # busy over [2, 3)
        assert bt.total_busy == 1.0
        at(sim, 4.0)
        assert bt.utilization() == pytest.approx(0.25)

    def test_add_span_longer_than_elapsed_clamps_to_zero(self):
        # Regression: start = now - duration went negative and the next
        # ordinary interval then appeared "out of order".
        sim = Simulator()
        bt = BusyTracker(sim)
        at(sim, 1.0)
        bt.add_span(5.0)  # clamped to [0, 1)
        assert bt.total_busy == pytest.approx(1.0)
        assert bt.intervals.starts[0] == 0.0
        bt.begin()
        at(sim, 2.0)
        bt.end()  # must not raise "intervals must be added in start order"
        assert bt.total_busy == pytest.approx(2.0)

    def test_add_span_overlapping_spans_ending_together(self):
        # Regression: two modelled spans of different lengths ending at the
        # same instant raised a spurious start-order ValueError when the
        # shorter span was recorded first.
        sim = Simulator()
        bt = BusyTracker(sim)
        at(sim, 4.0)
        bt.add_span(1.0)  # [3, 4)
        bt.add_span(3.0)  # [1, 4) — starts before the previous span
        assert bt.total_busy == pytest.approx(4.0)
        # busy_in sees both contributions in the overlap window.
        assert bt.intervals.busy_in(3.0, 4.0) == pytest.approx(2.0)
        assert bt.intervals.busy_in(0.0, 3.0) == pytest.approx(2.0)

    def test_add_interval_records_ahead_of_clock(self):
        sim = Simulator()
        bt = BusyTracker(sim)
        bt.add_interval(0.0, 2.0)
        bt.add_interval(1.0, 3.0)  # overlapping timeline reservation
        assert bt.total_busy == pytest.approx(4.0)

    def test_open_interval_counts_toward_total(self):
        sim = Simulator()
        bt = BusyTracker(sim)
        bt.begin()
        at(sim, 2.0)
        assert bt.total_busy == 2.0  # still open, accounted up to now

    def test_end_if_busy_closes_open_interval(self):
        sim = Simulator()
        bt = BusyTracker(sim)
        bt.begin()
        at(sim, 1.5)
        bt.end_if_busy()
        assert bt.total_busy == 1.5
        bt.end_if_busy()  # idempotent when idle
        assert bt.total_busy == 1.5
        with pytest.raises(RuntimeError):
            bt.end()  # the interval really was closed

    def test_utilization_at_t_zero(self):
        bt = BusyTracker(Simulator())
        assert bt.utilization() == 0.0

    def test_utilization_series(self):
        sim = Simulator()
        bt = BusyTracker(sim)
        bt.begin()
        at(sim, 1.0)
        bt.end()
        at(sim, 2.0)
        series = list(bt.utilization_series(dt=1.0))
        assert len(series) == 2
        assert series[0][1] == pytest.approx(1.0)
        assert series[1][1] == pytest.approx(0.0)


class TestProgressCounter:
    def test_counts_and_rates(self):
        sim = Simulator()
        pc = ProgressCounter(sim, name="sorted")
        assert pc.rate() == 0.0  # no time elapsed yet
        at(sim, 1.0)
        pc.add(100)
        at(sim, 2.0)
        pc.add(50)
        assert pc.total == 150
        assert pc.rate() == pytest.approx(75.0)

    def test_series_tracks_cumulative_total(self):
        sim = Simulator()
        pc = ProgressCounter(sim)
        pc.add(10)
        at(sim, 1.0)
        pc.add(5)
        assert pc.series.times == [0.0, 1.0]
        assert pc.series.values == [10, 15]
