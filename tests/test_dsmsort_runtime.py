"""Tests for the emulated distributed DSM-Sort (pass 1 + pass 2)."""

import numpy as np
import pytest

from repro.core import ConfigSolver, DSMConfig, predict_pass1
from repro.dsmsort import DsmSortJob, adaptive_config, run_adaptive
from repro.emulator.params import SystemParams


def fig_params(**over):
    """The calibrated cost family used by the figure benches (see bench.fig9)."""
    base = dict(
        n_hosts=1,
        n_asus=8,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )
    base.update(over)
    return SystemParams(**base)


N = 1 << 15  # 32k records keeps unit tests fast


def make_job(n=N, **over):
    defaults = dict(policy="static", workload="uniform", active=True, seed=1)
    params = over.pop("params", fig_params())
    cfg = over.pop("config", DSMConfig.for_n(n, alpha=16, gamma=16))
    defaults.update(over)
    return DsmSortJob(params, cfg, **defaults)


class TestPass1:
    def test_produces_expected_run_count(self):
        job = make_job()
        res = job.run_pass1()
        assert res.makespan > 0
        # ~N/beta full runs plus partial flush runs (at most alpha*H extra).
        expected_full = N // job.config.beta
        assert expected_full <= res.n_runs <= expected_full + job.config.alpha
        assert res.net_bytes > 0

    def test_runs_really_sorted(self):
        job = make_job()
        job.run_pass1()
        total = 0
        for d in range(job.params.n_asus):
            for _bucket, run in job.runs_on_asu[d]:
                keys = run["key"]
                assert np.all(keys[:-1] <= keys[1:])
                total += run.shape[0]
        assert total == (N // job.params.n_asus) * job.params.n_asus

    def test_run_buckets_respect_splitters(self):
        job = make_job()
        job.run_pass1()
        splitters = job.dist.splitters
        for d in range(job.params.n_asus):
            for bucket, run in job.runs_on_asu[d]:
                keys = run["key"].astype(np.uint64)
                if bucket > 0:
                    assert keys.min() > splitters[bucket - 1]
                if bucket < len(splitters):
                    assert keys.max() <= splitters[bucket]

    def test_deterministic(self):
        r1 = make_job().run_pass1()
        r2 = make_job().run_pass1()
        assert r1.makespan == r2.makespan
        assert r1.host_util == r2.host_util

    def test_emulation_close_to_prediction(self):
        # The emulator charges exactly the predictor's per-record costs, so
        # makespan should approach n / bottleneck_rate (plus fill/drain).
        job = make_job(params=fig_params(n_asus=4))
        res = job.run_pass1()
        pred = predict_pass1(job.params, job.config.alpha, job.config.beta)
        assert res.makespan == pytest.approx(pred.time_for(N), rel=0.30)

    def test_host_saturates_with_many_asus(self):
        # Enough blocks per ASU that steady state dominates fill/drain.
        n = 1 << 18
        job = make_job(n=n, params=fig_params(n_asus=32),
                       config=DSMConfig.for_n(n, alpha=16, gamma=16))
        res = job.run_pass1()
        assert res.host_util[0] > 0.85

    def test_asus_bottleneck_with_few_asus(self):
        n = 1 << 17
        job = make_job(n=n, params=fig_params(n_asus=2),
                       config=DSMConfig.for_n(n, alpha=256, gamma=16))
        res = job.run_pass1()
        assert res.host_util[0] < 0.7
        assert max(res.asu_cpu_util) > 0.85

    def test_active_beats_passive_with_many_asus(self):
        params = fig_params(n_asus=32)
        cfg = DSMConfig.for_n(N, alpha=64, gamma=16)
        t_active = DsmSortJob(params, cfg, active=True, seed=1).run_pass1().makespan
        t_passive = DsmSortJob(params, cfg, active=False, seed=1).run_pass1().makespan
        assert t_active < t_passive

    def test_passive_beats_active_with_few_asus_high_alpha(self):
        params = fig_params(n_asus=2)
        cfg = DSMConfig.for_n(N, alpha=256, gamma=16)
        t_active = DsmSortJob(params, cfg, active=True, seed=1).run_pass1().makespan
        t_passive = DsmSortJob(params, cfg, active=False, seed=1).run_pass1().makespan
        assert t_active > t_passive  # the Figure-9 slowdown region

    def test_util_series_shape(self):
        res = make_job(params=fig_params(n_hosts=2, n_asus=4)).run_pass1(util_dt=0.05)
        assert len(res.host_util_series) == 2
        for series in res.host_util_series:
            assert all(0.0 <= u <= 1.0 + 1e-9 for _t, u in series)


class TestEndToEnd:
    def test_full_sort_verifies(self):
        job = make_job(params=fig_params(n_hosts=2, n_asus=4))
        job.run_pass1()
        res2 = job.run_pass2()
        assert res2.makespan > 0
        job.verify()

    def test_full_sort_verifies_with_sr_routing(self):
        job = make_job(policy="sr", params=fig_params(n_hosts=2, n_asus=4))
        job.run_pass1()
        job.run_pass2()
        job.verify()

    def test_full_sort_verifies_passive(self):
        job = make_job(active=False, params=fig_params(n_hosts=2, n_asus=4))
        job.run_pass1()
        job.run_pass2()
        job.verify()

    def test_gamma_split(self):
        cfg = DSMConfig(
            n_records=N, alpha=8, beta=N // (8 * 16), gamma=16, gamma1=4
        )
        job = make_job(config=cfg)
        job.run_pass1()
        res2 = job.run_pass2()
        job.verify()
        assert res2.n_partial_runs > 0

    def test_pass2_before_pass1_rejected(self):
        with pytest.raises(RuntimeError, match="run_pass1 first"):
            make_job().run_pass2()

    def test_collected_before_pass2_rejected(self):
        job = make_job()
        job.run_pass1()
        with pytest.raises(RuntimeError, match="run_pass2 first"):
            job.collected_output()


class TestSkewAndRouting:
    def test_static_routing_unbalances_under_skew(self):
        params = fig_params(n_hosts=2, n_asus=8)
        cfg = DSMConfig.for_n(N, alpha=16, gamma=16)
        job = DsmSortJob(
            params, cfg, policy="static",
            workload="half_uniform_half_exponential", seed=3,
        )
        res = job.run_pass1()
        assert res.imbalance > 1.3  # most records land on host 0's buckets

    def test_sr_routing_balances_under_skew(self):
        params = fig_params(n_hosts=2, n_asus=8)
        cfg = DSMConfig.for_n(N, alpha=16, gamma=16)
        job = DsmSortJob(
            params, cfg, policy="sr",
            workload="half_uniform_half_exponential", seed=3,
        )
        res = job.run_pass1()
        assert res.imbalance < 1.1

    def test_sr_finishes_earlier_than_static_under_skew(self):
        # The headline Figure-10 result.
        params = fig_params(n_hosts=2, n_asus=8)
        cfg = DSMConfig.for_n(N, alpha=16, gamma=16)
        kw = dict(workload="half_uniform_half_exponential", seed=3)
        t_static = DsmSortJob(params, cfg, policy="static", **kw).run_pass1().makespan
        t_sr = DsmSortJob(params, cfg, policy="sr", **kw).run_pass1().makespan
        assert t_sr < t_static

    def test_jsq_also_balances(self):
        params = fig_params(n_hosts=2, n_asus=8)
        cfg = DSMConfig.for_n(N, alpha=16, gamma=16)
        job = DsmSortJob(
            params, cfg, policy="jsq",
            workload="half_uniform_half_exponential", seed=3,
        )
        res = job.run_pass1()
        assert res.imbalance < 1.2


class TestAdaptive:
    def test_adaptive_config_scales_alpha_with_asus(self):
        few = adaptive_config(fig_params(n_asus=2), N)
        many = adaptive_config(fig_params(n_asus=64), N)
        assert many.alpha > few.alpha

    def test_run_adaptive_executes_and_verifies(self):
        cfg, res, job = run_adaptive(
            fig_params(n_asus=4), N, gamma=16, verify=True, seed=2
        )
        assert res.makespan > 0
        assert cfg.alpha in ConfigSolver(fig_params(n_asus=4)).feasible_alphas()

    def test_adaptive_at_least_as_fast_as_fixed(self):
        params = fig_params(n_asus=16)
        _cfg, res_adapt, _ = run_adaptive(params, N, gamma=16, seed=2)
        t_fixed = DsmSortJob(
            params, DSMConfig.for_n(N, alpha=4, gamma=16), seed=2
        ).run_pass1().makespan
        assert res_adapt.makespan <= t_fixed * 1.05


class TestPayloadIntegrity:
    def test_payloads_travel_with_their_keys(self):
        """Records are not just key multisets: each 124-byte payload must
        still be attached to its original key after the emulated sort."""
        import numpy as np

        params = fig_params(n_asus=4, n_hosts=2)
        n = 1 << 13
        rng = np.random.default_rng(77)
        keys = rng.integers(0, 2**32 - 1, n, dtype=np.uint64).astype("<u4")
        records = np.zeros(n, dtype=params.schema.dtype)
        records["key"] = keys
        # Stamp each payload with a unique little-endian serial number.
        serials = np.arange(n, dtype="<u8")
        payload = np.zeros((n, params.schema.payload_size), dtype=np.uint8)
        payload[:, :8] = serials.view(np.uint8).reshape(n, 8)
        records["payload"] = payload.view("V124").ravel()

        per = n // 4
        asu_data = [records[i * per : (i + 1) * per] for i in range(4)]
        cfg = DSMConfig.for_n(n, alpha=8, gamma=8)
        job = DsmSortJob(params, cfg, policy="sr", seed=2, asu_data=asu_data)
        job.run_pass1()
        job.run_pass2()
        job.verify()

        out = job.collected_output()
        out_serials = (
            np.frombuffer(out["payload"].tobytes(), dtype=np.uint8)
            .reshape(n, params.schema.payload_size)[:, :8]
            .copy()
            .view("<u8")
            .ravel()
        )
        # Every record's key must equal the key the serial started with.
        assert np.array_equal(out["key"].astype("<u4"), keys[out_serials])
        # And every serial appears exactly once.
        assert np.array_equal(np.sort(out_serials), serials)
