"""Tests for record schemas and batch construction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.records import (
    DEFAULT_SCHEMA,
    RecordSchema,
    concat_records,
    empty_records,
    make_records,
    records_nbytes,
)


class TestRecordSchema:
    def test_default_matches_paper(self):
        # §6: 128-byte records with 4-byte keys.
        assert DEFAULT_SCHEMA.record_size == 128
        assert DEFAULT_SCHEMA.key_size == 4
        assert DEFAULT_SCHEMA.payload_size == 124

    def test_dtype_itemsize_equals_record_size(self):
        assert DEFAULT_SCHEMA.dtype.itemsize == 128

    def test_key_only_record(self):
        s = RecordSchema(record_size=4, key_dtype="<u4")
        assert s.payload_size == 0
        assert s.dtype.itemsize == 4

    def test_record_smaller_than_key_rejected(self):
        with pytest.raises(ValueError):
            RecordSchema(record_size=2, key_dtype="<u4")

    def test_key_max(self):
        assert DEFAULT_SCHEMA.key_max == 2**32 - 1
        s8 = RecordSchema(record_size=16, key_dtype="<u8")
        assert s8.key_max == 2**64 - 1

    def test_key_max_float_rejected(self):
        s = RecordSchema(record_size=16, key_dtype="<f8")
        with pytest.raises(TypeError):
            _ = s.key_max

    @given(st.integers(min_value=0, max_value=10**6))
    def test_nbytes_roundtrip(self, n):
        assert DEFAULT_SCHEMA.records_in(DEFAULT_SCHEMA.nbytes(n)) == n

    def test_records_in_truncates(self):
        assert DEFAULT_SCHEMA.records_in(129) == 1
        assert DEFAULT_SCHEMA.records_in(127) == 0


class TestMakeRecords:
    def test_keys_preserved(self):
        keys = np.array([5, 3, 9], dtype=np.uint32)
        batch = make_records(keys)
        assert np.array_equal(batch["key"], keys)

    def test_batch_nbytes(self):
        batch = make_records(np.arange(10, dtype=np.uint32))
        assert records_nbytes(batch) == 10 * 128

    def test_empty(self):
        batch = empty_records()
        assert batch.shape == (0,)
        assert batch.dtype == DEFAULT_SCHEMA.dtype

    def test_concat(self):
        a = make_records(np.array([1, 2], dtype=np.uint32))
        b = make_records(np.array([3], dtype=np.uint32))
        c = concat_records([a, b])
        assert list(c["key"]) == [1, 2, 3]

    def test_concat_empty_list(self):
        assert concat_records([]).shape == (0,)

    def test_concat_single_is_same_object(self):
        a = make_records(np.array([1], dtype=np.uint32))
        assert concat_records([a]) is a

    def test_key_dtype_conversion(self):
        batch = make_records(np.array([1.0, 2.0]))  # float in
        assert batch["key"].dtype == np.dtype("<u4")
