"""Tests for the TPIE layer: k-way merge, external sort, stream ops, PQ."""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bte import FileBTE, MemoryBTE
from repro.containers import RecordStream
from repro.functors import DistributeFunctor, MapFunctor
from repro.tpie import (
    ExternalPriorityQueue,
    count_records,
    distribution_sweep,
    external_sort,
    kway_merge_streams,
    scan_apply,
    stream_filter,
)
from repro.util.records import make_records
from repro.util.validation import check_sorted_permutation


def batch_of(keys):
    return make_records(np.asarray(keys, dtype=np.uint32))


class TestKWayMerge:
    def _merge(self, runs, **kw):
        bte = MemoryBTE()
        handles = []
        for i, run in enumerate(runs):
            h = bte.write_all(f"run{i}", batch_of(sorted(run)))
            handles.append(bte.open(f"run{i}"))
        out = kway_merge_streams(bte, handles, "out", **kw)
        return list(bte.read_all(out)["key"])

    def test_basic_three_way(self):
        got = self._merge([[1, 4, 7], [2, 5, 8], [3, 6, 9]])
        assert got == list(range(1, 10))

    def test_tiny_buffers(self):
        runs = [[1, 10, 20, 30], [2, 11, 21], [5, 5, 5, 40]]
        got = self._merge(runs, buffer_records=2)
        assert got == sorted(x for r in runs for x in r)

    def test_empty_runs_skipped(self):
        assert self._merge([[], [3, 4], []]) == [3, 4]

    def test_all_empty(self):
        assert self._merge([[], []]) == []

    def test_single_run_passthrough(self):
        assert self._merge([[1, 2, 3]]) == [1, 2, 3]

    def test_duplicates(self):
        got = self._merge([[1, 1, 1], [1, 1]])
        assert got == [1, 1, 1, 1, 1]

    def test_bad_buffer_size(self):
        bte = MemoryBTE()
        with pytest.raises(ValueError):
            kway_merge_streams(bte, [], "out", buffer_records=0)

    @settings(max_examples=30, deadline=None)
    @given(
        runs=st.lists(
            st.lists(st.integers(0, 1000), min_size=0, max_size=50),
            min_size=1,
            max_size=8,
        ),
        buf=st.sampled_from([1, 3, 16]),
    )
    def test_property_merge_equals_heapq(self, runs, buf):
        got = self._merge(runs, buffer_records=buf)
        expect = list(heapq.merge(*[sorted(r) for r in runs]))
        assert got == expect


class TestExternalSort:
    @pytest.mark.parametrize("bte_kind", ["memory", "file"])
    def test_sorts_and_permutes(self, bte_kind, tmp_path):
        bte = MemoryBTE() if bte_kind == "memory" else FileBTE(tmp_path / "b")
        rng = np.random.default_rng(3)
        data = batch_of(rng.integers(0, 2**32 - 1, 5000, dtype=np.uint64))
        inp = bte.write_all("in", data)
        out, stats = external_sort(bte, bte.open("in"), "out", memory_records=256, fan_in=4)
        result = bte.read_all(out)
        check_sorted_permutation(data, result)
        assert stats.n_records == 5000
        assert stats.n_initial_runs == -(-5000 // 256)

    def test_pass_count_matches_formula(self):
        bte = MemoryBTE()
        data = batch_of(np.arange(1000, dtype=np.uint32)[::-1].copy())
        bte.write_all("in", data)
        _out, stats = external_sort(bte, bte.open("in"), "out", memory_records=10, fan_in=4)
        # 100 runs at fan-in 4 -> ceil(log4 100) = 4 passes.
        assert stats.n_merge_passes == stats.expected_merge_passes() == 4

    def test_single_run_no_merge_pass(self):
        bte = MemoryBTE()
        bte.write_all("in", batch_of([3, 1, 2]))
        out, stats = external_sort(bte, bte.open("in"), "out", memory_records=100)
        assert stats.n_merge_passes == 0
        assert list(bte.read_all(out)["key"]) == [1, 2, 3]

    def test_empty_input(self):
        bte = MemoryBTE()
        bte.write_all("in", batch_of([]))
        out, stats = external_sort(bte, bte.open("in"), "out")
        assert bte.read_all(out).shape == (0,)
        assert stats.n_initial_runs == 0

    def test_temporaries_cleaned_up(self):
        bte = MemoryBTE()
        bte.write_all("in", batch_of(np.arange(100, dtype=np.uint32)))
        external_sort(bte, bte.open("in"), "out", memory_records=10, fan_in=2)
        assert bte.list_streams() == ["in", "out"]

    def test_bad_params(self):
        bte = MemoryBTE()
        bte.write_all("in", batch_of([1]))
        with pytest.raises(ValueError):
            external_sort(bte, bte.open("in"), "o1", memory_records=0)
        with pytest.raises(ValueError):
            external_sort(bte, bte.open("in"), "o2", fan_in=1)

    @settings(max_examples=20, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=400),
        mem=st.sampled_from([1, 7, 64]),
        fan=st.sampled_from([2, 3, 8]),
    )
    def test_property_external_sort(self, keys, mem, fan):
        bte = MemoryBTE()
        data = batch_of(keys)
        bte.write_all("in", data)
        out, _ = external_sort(bte, bte.open("in"), "out", memory_records=mem, fan_in=fan)
        check_sorted_permutation(data, bte.read_all(out))


class TestStreamOps:
    def test_scan_apply_map(self):
        bte = MemoryBTE()
        src = RecordStream("src", bte=bte)
        src.append(batch_of([1, 2, 3]))
        dst = RecordStream("dst", bte=bte)
        double = MapFunctor(
            lambda b: make_records((b["key"] * 2).astype(np.uint32)), compares=1
        )
        scan_apply(src, double, dst, block_records=2)
        assert list(dst.read_all()["key"]) == [2, 4, 6]

    def test_scan_apply_rejects_multi_output(self):
        src = RecordStream("src")
        with pytest.raises(ValueError):
            scan_apply(src, DistributeFunctor.uniform(4))

    def test_stream_filter(self):
        bte = MemoryBTE()
        src = RecordStream("src", bte=bte)
        src.append(batch_of([1, 2, 3, 4, 5]))
        dst = RecordStream("dst", bte=bte)
        stream_filter(src, lambda b: b["key"] % 2 == 1, dst, block_records=2)
        assert list(dst.read_all()["key"]) == [1, 3, 5]

    def test_count_records(self):
        src = RecordStream("src")
        src.append(batch_of(range(10)))
        assert count_records(src, block_records=3) == 10

    def test_distribution_sweep_partitions(self):
        bte = MemoryBTE()
        src = RecordStream("src", bte=bte)
        rng = np.random.default_rng(5)
        data = batch_of(rng.integers(0, 2**32 - 1, 1000, dtype=np.uint64))
        src.append(data)
        buckets = distribution_sweep(
            src, DistributeFunctor.uniform(4), bte, "bucket", block_records=128
        )
        assert len(buckets) == 4
        total = np.concatenate([b.read_all() for b in buckets])
        assert sorted(total["key"].tolist()) == sorted(data["key"].tolist())
        # Bucket key ranges must be disjoint and increasing.
        maxes = [b.read_all()["key"].max() for b in buckets if len(b)]
        mins = [b.read_all()["key"].min() for b in buckets if len(b)]
        for hi, lo in zip(maxes, mins[1:]):
            assert hi <= lo


class TestExternalPriorityQueue:
    def test_inmemory_ordering(self):
        pq = ExternalPriorityQueue(memory_entries=100)
        for p in [5, 1, 3, 2, 4]:
            pq.push(p, data=p * 10)
        out = [pq.pop() for _ in range(5)]
        assert out == [(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]

    def test_spill_and_merge(self):
        pq = ExternalPriorityQueue(memory_entries=8, buffer_entries=4)
        rng = np.random.default_rng(7)
        prios = rng.integers(0, 1000, 200).tolist()
        for p in prios:
            pq.push(p)
        assert pq.n_spilled_runs > 0
        got = [pq.pop()[0] for _ in range(len(prios))]
        assert got == sorted(prios)
        assert len(pq) == 0

    def test_interleaved_push_pop(self):
        pq = ExternalPriorityQueue(memory_entries=4)
        pq.push(10)
        pq.push(1)
        assert pq.pop() == (1, 0)
        pq.push(5)
        pq.push(0)
        pq.push(7)
        pq.push(2)  # may trigger spill
        got = [pq.pop()[0] for _ in range(4)]
        assert got == [0, 2, 5, 7]
        assert pq.pop() == (10, 0)

    def test_stability_fifo_for_equal_priorities(self):
        pq = ExternalPriorityQueue(memory_entries=4, buffer_entries=2)
        for i in range(10):
            pq.push(42, data=i)
        order = [pq.pop()[1] for _ in range(10)]
        assert order == list(range(10))

    def test_stable_order_across_many_spilled_runs(self):
        # Many tiny spilled runs, every entry the same priority: the run-head
        # heap must still pop in exact (key, seq) insertion order.
        pq = ExternalPriorityQueue(memory_entries=2, buffer_entries=2)
        n = 64
        for i in range(n):
            pq.push(7, data=i)
        assert pq.n_spilled_runs >= n // 2 - 1
        assert [pq.pop() for _ in range(n)] == [(7, i) for i in range(n)]
        assert len(pq) == 0

    def test_stable_order_interleaved_priorities_across_runs(self):
        # Duplicated priorities scattered over multiple runs and the
        # insertion heap: global pop order must be (priority, arrival).
        pq = ExternalPriorityQueue(memory_entries=4, buffer_entries=2)
        prios = [3, 1, 2, 1, 3, 2, 1, 2, 3, 1, 2, 3] * 8
        expect = sorted(
            ((p, i) for i, p in enumerate(prios)), key=lambda t: (t[0], t[1])
        )
        for i, p in enumerate(prios):
            pq.push(p, data=i)
        assert pq.n_spilled_runs > 2
        assert [pq.pop() for _ in range(len(prios))] == expect

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            ExternalPriorityQueue().pop()

    def test_peek_does_not_remove(self):
        pq = ExternalPriorityQueue()
        pq.push(3, data=33)
        assert pq.peek() == (3, 33)
        assert len(pq) == 1
        assert ExternalPriorityQueue().peek() is None

    def test_pop_all_at(self):
        pq = ExternalPriorityQueue()
        pq.push(1, 100)
        pq.push(2, 200)
        pq.push(1, 101)
        assert pq.pop_all_at(1) == [100, 101]
        assert pq.pop_all_at(1) == []
        assert pq.peek() == (2, 200)

    def test_bad_memory_bound(self):
        with pytest.raises(ValueError):
            ExternalPriorityQueue(memory_entries=1)

    @settings(max_examples=25, deadline=None)
    @given(
        prios=st.lists(st.integers(0, 10**6), min_size=0, max_size=300),
        mem=st.sampled_from([2, 8, 64]),
    )
    def test_property_matches_sorted(self, prios, mem):
        pq = ExternalPriorityQueue(memory_entries=mem, buffer_entries=4)
        for p in prios:
            pq.push(p)
        got = [pq.pop()[0] for _ in range(len(prios))]
        assert got == sorted(prios)


class TestDistributionSort:
    def _sort(self, keys, **kw):
        from repro.tpie import distribution_sort

        bte = MemoryBTE()
        data = batch_of(keys)
        bte.write_all("in", data)
        out, stats = distribution_sort(bte, bte.open("in"), "out", **kw)
        check_sorted_permutation(data, bte.read_all(out))
        return bte, stats

    def test_sorts_random_input(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 2**32 - 1, 3000, dtype=np.uint64)
        _bte, stats = self._sort(keys, memory_records=128, fan_out=4)
        assert stats.n_leaf_buckets > 1
        assert stats.max_depth >= 1

    def test_in_memory_input_no_recursion(self):
        _bte, stats = self._sort([3, 1, 2], memory_records=100)
        assert stats.max_depth == 0
        assert stats.n_leaf_buckets == 1

    def test_all_equal_keys_terminate(self):
        _bte, stats = self._sort([7] * 500, memory_records=50, fan_out=4)
        assert stats.n_leaf_buckets >= 1

    def test_two_distinct_keys_terminate(self):
        # Sampled splitter may equal the max key: progress guard must fire.
        _bte, stats = self._sort([1] * 300 + [2] * 300, memory_records=50, fan_out=2)

    def test_skewed_input(self):
        rng = np.random.default_rng(12)
        keys = (np.clip(rng.exponential(0.02, 2000), 0, 1) * (2**32 - 1)).astype(np.uint64)
        self._sort(keys, memory_records=100, fan_out=8)

    def test_temporaries_cleaned(self):
        bte, _stats = self._sort(range(1000), memory_records=64, fan_out=4)
        assert bte.list_streams() == ["in", "out"]

    def test_bad_params(self):
        from repro.tpie import distribution_sort

        bte = MemoryBTE()
        bte.write_all("in", batch_of([1]))
        with pytest.raises(ValueError):
            distribution_sort(bte, bte.open("in"), "o", memory_records=0)
        with pytest.raises(ValueError):
            distribution_sort(bte, bte.open("in"), "o", fan_out=1)

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=400),
        mem=st.sampled_from([1, 16, 100]),
        fan=st.sampled_from([2, 8]),
    )
    def test_property_distribution_sort(self, keys, mem, fan):
        self._sort(keys, memory_records=mem, fan_out=fan)
