"""Tests for repro.metrics: instruments, scraping, exporters, the
registry-fed load manager, and the bench regression gate.

The acceptance bar (docs/METRICS.md): metering a run must not change it —
same-seed makespans are bit-identical with the collector on or off, at any
scrape interval — and the exports themselves must be deterministic, including
under fault injection.
"""

import json
import math

import numpy as np
import pytest

from repro.bench.fig9 import fig9_params
from repro.bench.fig10 import fig10_params
from repro.bench.regress import (
    compare_dirs,
    compare_payloads,
    compare_values,
)
from repro.bench.regress import main as regress_main
from repro.bench.report import SCHEMA_VERSION as BENCH_SCHEMA_VERSION
from repro.core.config import ConfigSolver, DSMConfig
from repro.core.load_manager import LoadManager
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.faults import FaultPlan, crash_asu
from repro.metrics import (
    MetricsRegistry,
    metrics_dict,
    metrics_json,
    prometheus_text,
)
from repro.metrics.registry import derive_owner


def _params(**over):
    base = dict(
        n_hosts=2,
        n_asus=8,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )
    base.update(over)
    return SystemParams(**base)


HB = dict(heartbeat_interval=0.002, heartbeat_timeout=0.008)


def run_metered(faults=None, interval=0.002, n=1 << 13, seed=9, **over):
    """A metered two-pass DSM-Sort; returns (registry, pass1 result, job)."""
    registry = MetricsRegistry()
    kw = dict(
        policy="sr", seed=seed, metrics=registry, scrape_interval=interval
    )
    if faults is not None:
        kw.update(faults=faults, active=True, **HB)
    kw.update(over)
    job = DsmSortJob(_params(), DSMConfig.for_n(n, alpha=8, gamma=16), **kw)
    r1 = job.run_pass1()
    job.run_pass2()
    job.verify()
    return registry, r1, job


# ---------------------------------------------------------------------------
# Histogram quantiles
# ---------------------------------------------------------------------------
class TestHistogramQuantiles:
    #: one bucket spans a 2**(1/8) ≈ 1.0905 ratio, and the estimate is the
    #: geometric midpoint of the bucket holding the nearest-rank observation,
    #: so it sits within half a bucket (≈4.4%) of that order statistic.
    BUCKET_RATIO = 2 ** (1 / 8)

    def test_quantiles_within_one_bucket_of_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds")
        vals = np.random.default_rng(0).lognormal(mean=-7.0, sigma=1.5, size=5000)
        for v in vals:
            h.observe(float(v))
        ordered = np.sort(vals)
        for q in (0.05, 0.25, 0.50, 0.90, 0.95, 0.99):
            exact = float(ordered[max(0, math.ceil(q * len(vals)) - 1)])
            est = h.quantile(q)
            assert exact / self.BUCKET_RATIO <= est <= exact * self.BUCKET_RATIO, (
                q, exact, est,
            )

    def test_quantile_clamps_to_observed_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds")
        for v in (1.0, 1.01, 1.02):
            h.observe(v)
        assert h.quantile(0.0) >= 1.0
        assert h.quantile(1.0) <= 1.02

    def test_weighted_observations(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds")
        h.observe(1.0, n=99)
        h.observe(100.0, n=1)
        assert h.count == 100
        assert h.quantile(0.5) == pytest.approx(1.0, rel=0.1)
        assert h.quantile(1.0) == 100.0
        assert h.mean == pytest.approx((99 + 100) / 100)

    def test_underflow_and_empty(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds")
        assert math.isnan(h.quantile(0.5))
        h.observe(0.0)
        h.observe(-2.0)
        h.observe(5.0)
        assert h.underflow == 2
        assert h.quantile(0.1) == -2.0  # min(min, 0.0)
        assert 5.0 / self.BUCKET_RATIO <= h.quantile(1.0) <= 5.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_deterministic(self):
        def build():
            reg = MetricsRegistry()
            h = reg.histogram("repro_test_seconds")
            for v in np.random.default_rng(4).exponential(0.01, size=1000):
                h.observe(float(v))
            return h.final()

        assert build() == build()


# ---------------------------------------------------------------------------
# Registry basics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_derive_owner(self):
        assert derive_owner("asu0.cpu") == "asu0"
        assert derive_owner("mbox:host1") == "host1"
        assert derive_owner("host0") == "host0"

    def test_dead_node_gauge_nan_counter_survives(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_cpu_utilization", fn=lambda t: 0.5,
                      owner="asu0", node="asu0.cpu")
        c = reg.counter("repro_cpu_cycles_total", owner="asu0", node="asu0.cpu")
        c.inc(100.0)
        assert g.sample(1.0) == 0.5
        reg.mark_dead("asu0")
        assert math.isnan(g.sample(2.0))
        assert c.sample(2.0) == 100.0  # work done before the crash is real

    def test_get_or_create_idempotent_and_typed(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", node="a")
        assert reg.counter("repro_x_total", node="a") is a
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("repro_x_total", node="a")


# ---------------------------------------------------------------------------
# Metered DSM-Sort: determinism and zero perturbation
# ---------------------------------------------------------------------------
class TestMeteredSort:
    def test_same_seed_metrics_json_byte_identical(self):
        def one() -> str:
            registry, _r1, _job = run_metered()
            return metrics_json(registry, registry.collector)

        a = one()
        assert a == one()
        assert len(a) > 1000

    def test_fault_injected_metrics_json_byte_identical(self):
        def one() -> str:
            plan = FaultPlan([crash_asu(0.02, 3)])
            registry, _r1, _job = run_metered(faults=plan)
            dump = metrics_json(registry, registry.collector)
            assert "asu3" in registry.dead_nodes
            assert registry.get("repro_failures_detected_total").value >= 1
            assert registry.get(
                "repro_faults_injected_total", kind="crash_asu"
            ).value == 1
            return dump

        assert one() == one()

    def test_scrape_interval_does_not_perturb_makespan(self):
        def makespans(metrics=None, interval=None):
            job = DsmSortJob(
                _params(), DSMConfig.for_n(1 << 13, alpha=8, gamma=16),
                policy="sr", seed=9, metrics=metrics, scrape_interval=interval,
            )
            r1 = job.run_pass1()
            r2 = job.run_pass2()
            return (r1.makespan, r2.makespan)

        bare = makespans()
        for dt in (0.01, 0.003, 0.0007):
            assert makespans(MetricsRegistry(), dt) == bare

    def test_dead_node_gauges_read_nan_not_frozen(self):
        plan = FaultPlan([crash_asu(0.02, 3)])
        registry, r1, _job = run_metered(faults=plan)
        detected_at = r1.fault_report.detected["asu3"]
        doc = metrics_dict(registry, registry.collector)
        key = 'repro_cpu_utilization{node="asu3.cpu"}'
        # Final value is absent (null), not the last pre-crash level.
        assert doc["final"][key]["value"] is None
        pts = doc["series"][key]
        before = [v for t, v in pts if t < plan.faults[0].t]
        after = [v for t, v in pts if t > detected_at]
        assert before and all(v is not None for v in before)
        assert after and all(v is None for v in after)
        # A live node keeps reporting through the same window.
        live = doc["series"]['repro_cpu_utilization{node="asu0.cpu"}']
        assert all(v is not None for _t, v in live)

    def test_prometheus_text_renders(self):
        registry, r1, _job = run_metered()
        text = prometheus_text(registry, t=r1.makespan)
        assert "# TYPE repro_cpu_utilization gauge" in text
        assert "# TYPE repro_cpu_cycles_total counter" in text
        assert "# TYPE repro_stage_record_latency_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_stage_latency_histograms_cover_all_stages(self):
        registry, _r1, _job = run_metered()
        stages = {
            inst.labels["stage"]
            for inst in registry.instruments()
            if inst.name == "repro_stage_record_latency_seconds"
        }
        assert {"distribute", "sort", "write", "premerge", "merge"} <= stages
        for inst in registry.instruments():
            if inst.name == "repro_stage_record_latency_seconds":
                assert inst.count > 0
                assert inst.quantile(0.5) > 0.0


# ---------------------------------------------------------------------------
# LoadManager routes from registry-backed feedback
# ---------------------------------------------------------------------------
class TestLoadManagerFeedback:
    def test_router_arrays_are_registry_storage(self):
        reg = MetricsRegistry()
        lm = LoadManager(_params(), 4, 1, policy="jsq",
                         rng=np.random.default_rng(0), registry=reg)
        gv = reg.gauge_vector("repro_lm_queue_depth_records", 4)
        assert lm.router.outstanding is gv.values
        lm.route(0, 10)
        routed = reg.gauge_vector("repro_lm_routed_records_total", 4)
        assert routed.values.sum() == 10.0
        assert gv.values.sum() == 10.0  # outstanding until completed
        lm.complete(int(np.argmax(gv.values)), 10, busy_cycles=123.0)
        assert gv.values.sum() == 0.0
        busy = reg.gauge_vector("repro_lm_busy_cycles_total", 4)
        assert busy.values.sum() == 123.0

    def test_quarantine_marks_feedback_dead(self):
        reg = MetricsRegistry()
        lm = LoadManager(_params(), 4, 1, policy="sr",
                         rng=np.random.default_rng(0), registry=reg)
        lm.quarantine(2)
        gv = reg.gauge_vector("repro_lm_queue_depth_records", 4)
        assert bool(gv.element_dead[2])
        assert math.isnan(gv.sample_element(2, 0.0))
        assert 2 not in lm.alive_instances()

    def test_makespans_pinned_after_feedback_refactor(self):
        """Same-seed makespans must not move when routing reads registry
        gauges: these constants predate the feedback refactor."""
        n = 1 << 13
        p9 = fig9_params(n_asus=4)
        cfg9 = ConfigSolver(p9, gamma=16).config_for_alpha(n, 16)
        for pol in ("static", "sr"):
            job = DsmSortJob(p9, cfg9, policy=pol, seed=42)
            assert job.run_pass1().makespan == 0.03618833047916658, pol

        p10 = fig10_params(n_asus=4, n_hosts=2)
        cfg10 = ConfigSolver(p10, gamma=16).config_for_alpha(n, 16)
        expected = {
            "static": (0.036068726104166574, 0.012633232083333381, 1.490966796875),
            "sr": (0.03598515256249992, 0.012545419145833379, 1.061767578125),
            "jsq": (0.036131057062499916, 0.01238282266666671, 1.0078125),
        }
        for pol, (m1, m2, imb) in expected.items():
            job = DsmSortJob(p10, cfg10, policy=pol,
                             workload="half_uniform_half_exponential", seed=42)
            r1 = job.run_pass1()
            r2 = job.run_pass2()
            assert (r1.makespan, r2.makespan, r1.imbalance) == (m1, m2, imb), pol


# ---------------------------------------------------------------------------
# Bench regression gate
# ---------------------------------------------------------------------------
class TestRegressGate:
    def payload(self, **over):
        base = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "makespan": 0.5,
            "series": {"a": [1.0, 2.0, 3.0]},
            "label": "quick",
        }
        base.update(over)
        return base

    def test_identical_payloads_pass(self):
        assert compare_payloads(self.payload(), self.payload()) == []

    def test_within_tolerance_passes(self):
        cand = self.payload(makespan=0.5 * 1.01)
        assert compare_payloads(self.payload(), cand, rtol=0.02) == []

    def test_out_of_tolerance_fails(self):
        cand = self.payload(makespan=0.5 * 1.10)
        diffs = compare_payloads(self.payload(), cand, rtol=0.02)
        assert len(diffs) == 1 and diffs[0].path == "$.makespan"

    def test_schema_version_mismatch_fails(self):
        cand = self.payload(schema_version=BENCH_SCHEMA_VERSION + 1)
        diffs = compare_payloads(self.payload(), cand)
        assert diffs and "schema_version" in diffs[0].path

    def test_structural_mismatches(self):
        assert list(compare_values({"a": 1}, {}))[0].note == "missing from candidate"
        assert list(compare_values([1, 2], [1]))[0].note == "length mismatch"
        assert list(compare_values("x", 1.0))[0].note == "type mismatch"
        assert list(compare_values("x", "y"))  # exact string compare

    def test_int_float_compare_numerically(self):
        assert list(compare_values(1, 1.0)) == []

    def _write(self, d, name, payload):
        (d / f"BENCH_{name}.json").write_text(json.dumps(payload))

    def test_compare_dirs_and_main(self, tmp_path, capsys):
        base = tmp_path / "baseline"
        cand = tmp_path / "cand"
        base.mkdir()
        cand.mkdir()
        self._write(base, "a", self.payload())
        self._write(cand, "a", self.payload())
        self._write(cand, "b", self.payload())  # new bench: allowed
        rep = compare_dirs(str(base), str(cand))
        assert rep.ok and rep.new == ["BENCH_b.json"]
        assert regress_main(["--baseline", str(base), "--candidate", str(cand)]) == 0
        assert "PASS" in capsys.readouterr().out

        self._write(cand, "a", self.payload(makespan=1.0))
        assert regress_main(["--baseline", str(base), "--candidate", str(cand)]) == 1
        assert "FAIL" in capsys.readouterr().out

        (cand / "BENCH_a.json").unlink()
        rep = compare_dirs(str(base), str(cand))
        assert not rep.ok and rep.missing == ["BENCH_a.json"]

    def test_missing_baseline_dir_is_distinct_error(self, tmp_path):
        assert regress_main(
            ["--baseline", str(tmp_path / "nope"), "--candidate", str(tmp_path)]
        ) == 2

    def test_committed_baselines_carry_schema_version(self):
        import glob
        import os

        here = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "baseline")
        paths = glob.glob(os.path.join(here, "BENCH_*.json"))
        assert paths, "benchmarks/baseline/ snapshots missing"
        for p in paths:
            with open(p) as fh:
                doc = json.load(fh)
            assert doc["schema_version"] == BENCH_SCHEMA_VERSION
            assert doc["params"]["c"] == 8.0


class TestHistogramSnapshot:
    def _filled(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds")
        for v in np.random.default_rng(7).exponential(0.01, size=2000):
            h.observe(float(v))
        return reg, h

    def test_final_carries_count_sum_and_p999(self):
        _reg, h = self._filled()
        doc = h.final()
        assert doc["count"] == 2000
        assert doc["sum"] == pytest.approx(h.sum)
        assert doc["min"] == h.min and doc["max"] == h.max
        assert doc["p99"] <= doc["p999"] <= doc["max"]

    def test_snapshot_is_final_alias(self):
        _reg, h = self._filled()
        assert h.snapshot() == h.final()

    def test_empty_histogram_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds")
        doc = h.final()
        assert doc["count"] == 0 and doc["sum"] == 0.0
        assert doc["min"] is None and doc["max"] is None
        assert math.isnan(doc["p999"])

    def test_quantile_exact_endpoints(self):
        _reg, h = self._filled()
        assert h.quantile(0.0) == h.min
        assert h.quantile(1.0) == h.max
        h.observe(123.456)
        assert h.quantile(1.0) == 123.456

    def test_prometheus_p999_gauge(self):
        reg, h = self._filled()
        text = prometheus_text(reg, t=1.0)
        assert "# TYPE repro_test_seconds_p999 gauge" in text
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith("repro_test_seconds_p999")
        )
        assert float(line.split()[-1]) == pytest.approx(h.quantile(0.999))
        # count and sum still rendered alongside the new tail gauge
        assert "repro_test_seconds_count 2000" in text
